//! Message-passing implementation of Algorithm 1 on [`ftclust_netsim`].
//!
//! Executes the pseudocode exactly as written: each inner-loop iteration
//! takes **two rounds** (one to exchange `x_i, x_i^+, δ̃_i`, one to exchange
//! colors — the accounting used in the proof of Theorem 4.5), preceded by
//! one round to exchange initial colors (nodes with zero demand start
//! gray) and followed by two rounds to exchange the dual shares needed for
//! `z_i` (line 27). Total: `2t² + 3` rounds.
//!
//! ### Message-size accounting
//!
//! Numeric values (`x`, `x⁺`, `α`, `β`, `y`) are metered at
//! [`VALUE_BITS`] = 32 bits each — a fixed-point encoding with more
//! precision than the algorithm needs: every transmitted value is a sum of
//! at most `t²` known powers `(Δ+1)^{-q/t}`, so an index-based encoding of
//! `O(t log t + log Δ) ⊆ O(log n)` bits exists; we charge a fixed 32 bits
//! for simplicity, which dominates that bound for all tested sizes.
//! Dynamic degrees are charged their actual width, colors 1 bit.
//!
//! The protocol performs the same floating-point operations in the same
//! order as [`super::solve_fractional`]; their outputs are bit-identical
//! (asserted in the tests and in experiment E13).

use super::engine::account;
use super::{FractionalParams, FractionalSolution};
use crate::{Instance, KmdsError};
use ftclust_graphs::NodeId;
use ftclust_netsim::exec::{Executor, Phase, Stack};
use ftclust_netsim::transport::TransportConfig;
use ftclust_netsim::{
    bits_for_ids, ChurnPlan, Context, Control, Envelope, EventLog, Metrics, NodeLogic, Payload,
    Topology,
};

/// Bits charged per transmitted numeric value (see the module docs).
pub const VALUE_BITS: usize = 32;

/// Wire messages of the LP protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum LpMsg {
    /// A node's current color (line 23).
    Color {
        /// `true` while the node is not yet fully covered.
        white: bool,
    },
    /// The per-iteration share `x_i, x_i^+, δ̃_i` (line 9).
    Share {
        /// Current LP value `x_i`.
        x: f64,
        /// This iteration's raise `x_i^+`.
        xplus: f64,
        /// Dynamic degree `δ̃_i`.
        dyndeg: u32,
    },
    /// The final dual share: node `i` sends `(α_{j,i}, β_{j,i}, y_i)` to
    /// each neighbor `j` so that `j` can evaluate line 27.
    Dual {
        /// `α_{j,i}` — recipient-specific.
        alpha: f64,
        /// `β_{j,i}` — recipient-specific.
        beta: f64,
        /// The sender's dual variable `y_i`.
        y: f64,
    },
}

impl Payload for LpMsg {
    fn bit_size(&self) -> usize {
        match self {
            LpMsg::Color { .. } => 1,
            LpMsg::Share { dyndeg, .. } => 2 * VALUE_BITS + bits_for_ids(*dyndeg as usize + 2),
            LpMsg::Dual { .. } => 3 * VALUE_BITS,
        }
    }
}

/// Per-node protocol state for Algorithm 1.
#[derive(Debug)]
pub struct LpNode {
    k: f64,
    t: u32,
    d1: f64,
    x: f64,
    xplus: f64,
    cov: f64,
    white: bool,
    dyndeg: u32,
    /// `α_{j,me}` / `β_{j,me}` per neighbor, aligned with the sorted
    /// neighbor list; `_self` entries hold `α_{me,me}` / `β_{me,me}`.
    alpha: Vec<f64>,
    beta: Vec<f64>,
    alpha_self: f64,
    beta_self: f64,
    y: f64,
    z: f64,
    lemma41_violations: u64,
}

impl LpNode {
    fn new(k: u32, t: u32, delta: usize) -> Self {
        LpNode {
            k: k as f64,
            t,
            d1: (delta + 1) as f64,
            x: 0.0,
            xplus: 0.0,
            cov: 0.0,
            white: k > 0,
            dyndeg: 0,
            alpha: Vec::new(),
            beta: Vec::new(),
            alpha_self: 0.0,
            beta_self: 0.0,
            y: 0.0,
            z: 0.0,
            lemma41_violations: 0,
        }
    }

    fn update_dyndeg(&mut self, inbox: &[Envelope<LpMsg>]) {
        let mut count = u32::from(self.white);
        for env in inbox {
            match env.payload {
                LpMsg::Color { white } => count += u32::from(white),
                _ => unreachable!("expected Color messages"),
            }
        }
        self.dyndeg = count;
    }
}

impl NodeLogic for LpNode {
    type Payload = LpMsg;

    fn on_round(&mut self, inbox: &[Envelope<LpMsg>], ctx: &mut Context<'_, LpMsg>) -> Control {
        let r = ctx.round();
        let t = self.t as u64;
        let total_iters = t * t;
        if r == 0 {
            // Initial color exchange; also size the per-neighbor duals.
            self.alpha = vec![0.0; ctx.degree()];
            self.beta = vec![0.0; ctx.degree()];
            ctx.broadcast(LpMsg::Color { white: self.white });
            return Control::Continue;
        }
        if r <= 2 * total_iters {
            let m = (r - 1) / 2; // inner-loop iteration index
            let p = (self.t - 1 - (m / t) as u32) as f64;
            let q = (self.t - 1 - (m % t) as u32) as f64;
            let threshold = self.d1.powf(p / self.t as f64);
            if (r - 1) % 2 == 0 {
                // Phase A: refresh δ̃ from the colors just received, then
                // raise and share.
                self.update_dyndeg(inbox);
                // Lemma 4.1 measurement at the start of each outer
                // iteration after the first.
                if m % t == 0 && m > 0 {
                    let bound = self.d1.powf((p + 1.0) / self.t as f64);
                    if self.x < 1.0 - 1e-12 && self.dyndeg as f64 > bound + 1e-9 {
                        self.lemma41_violations += 1;
                    }
                }
                let inc = self.d1.powf(-q / self.t as f64);
                self.xplus = if self.x < 1.0 - 1e-12 && (self.dyndeg as f64) >= threshold - 1e-9 {
                    let xp = inc.min(1.0 - self.x);
                    self.x += xp;
                    if self.x > 1.0 - 1e-12 {
                        self.x = 1.0;
                    }
                    xp
                } else {
                    0.0
                };
                ctx.broadcast(LpMsg::Share {
                    x: self.x,
                    xplus: self.xplus,
                    dyndeg: self.dyndeg,
                });
            } else {
                // Phase B: dual accounting from the shares, then color.
                if self.white {
                    let mut cplus = self.xplus;
                    for env in inbox {
                        match env.payload {
                            LpMsg::Share { xplus, .. } => cplus += xplus,
                            _ => unreachable!("expected Share messages"),
                        }
                    }
                    let neighbor_xplus = inbox.iter().map(|env| match env.payload {
                        LpMsg::Share { xplus, .. } => xplus,
                        _ => unreachable!(),
                    });
                    let (alpha, beta) = (&mut self.alpha, &mut self.beta);
                    let turned_gray = account(
                        self.k,
                        threshold,
                        &mut self.cov,
                        cplus,
                        self.xplus,
                        &mut self.alpha_self,
                        &mut self.beta_self,
                        neighbor_xplus,
                        |o, da, db| {
                            alpha[o] += da;
                            beta[o] += db;
                        },
                    );
                    if let Some(y) = turned_gray {
                        self.white = false;
                        self.y = y;
                    }
                }
                ctx.broadcast(LpMsg::Color { white: self.white });
            }
            return Control::Continue;
        }
        if r == 2 * total_iters + 1 {
            // Dual exchange: send (α_{j,me}, β_{j,me}, y_me) to each j.
            // (The final color inbox needs no processing.)
            for (o, &j) in ctx.neighbors().iter().enumerate() {
                ctx.send(
                    j,
                    LpMsg::Dual {
                        alpha: self.alpha[o],
                        beta: self.beta[o],
                        y: self.y,
                    },
                );
            }
            return Control::Continue;
        }
        // Final round: assemble z (line 27) and halt. Inbox arrives in
        // ascending sender order, matching the engine's summation order.
        let mut z = self.alpha_self * self.y - self.beta_self;
        for env in inbox {
            match env.payload {
                LpMsg::Dual { alpha, beta, y } => z += alpha * y - beta,
                _ => unreachable!("expected Dual messages"),
            }
        }
        self.z = z;
        Control::Halt
    }
}

/// The result of a protocol execution: the solution plus communication
/// metrics.
#[derive(Debug, Clone)]
pub struct FractionalProtocolRun {
    /// The computed solution (identical to the engine's).
    pub solution: FractionalSolution,
    /// Rounds, messages and bits used.
    pub metrics: Metrics,
}

/// Assembles the [`FractionalSolution`] from the final per-node states —
/// shared by the synchronous, asynchronous and lossy runners, which must
/// all produce the identical solution.
fn assemble_solution<'n>(
    inst: &Instance<'_>,
    t: u32,
    delta: usize,
    nodes: impl Iterator<Item = &'n LpNode>,
) -> FractionalSolution {
    let n = inst.graph().node_count();
    let mut x = vec![0.0f64; n];
    let mut y = vec![0.0f64; n];
    let mut z = vec![0.0f64; n];
    let mut lemma41_violations = 0;
    for (i, node) in nodes.enumerate() {
        x[i] = node.x;
        y[i] = node.y;
        z[i] = node.z;
        lemma41_violations += node.lemma41_violations;
    }
    let d1 = (delta + 1) as f64;
    let kappa = t as f64 * d1.powf(1.0 / t as f64);
    let dual_raw: f64 = (0..n).map(|i| inst.demands()[i] as f64 * y[i] - z[i]).sum();
    let value: f64 = x.iter().sum();
    FractionalSolution {
        x,
        y,
        z,
        kappa,
        lower_bound: (dual_raw / kappa).max(0.0),
        value,
        t,
        delta,
        lemma41_violations,
    }
}

/// Algorithm 1's declarative span plan: round 0 is `dyndeg` (the initial
/// color/dynamic-degree exchange), the `m`-th inner iteration contributes
/// `raise(m)` (phase A) and `threshold(m)` (phase B, the threshold/dual
/// accounting round), and the closing dual exchange plus assembly rounds
/// run under `dual_exchange`.
fn lp_phases(t2: u64) -> Vec<Phase> {
    let mut plan = Vec::with_capacity(2 * t2 as usize + 2);
    plan.push(Phase::span("dyndeg", 1));
    for m in 0..t2 {
        plan.push(Phase::indexed("raise", m, 1));
        plan.push(Phase::indexed("threshold", m, 1));
    }
    plan.push(Phase::tail("dual_exchange"));
    plan
}

/// Runs **Algorithm 1** through the composable executor stack of
/// [`ftclust_netsim::exec`]: the reliable transport (loss masking), churn
/// and tracing layers selected by `stack` compose freely. This is the
/// canonical driver — [`run_fractional_protocol`] and the historical
/// `_lossy`/`_traced` entry points are thin shims over it.
///
/// When the stack is traced, the run's [`EventLog`] attributes every
/// round, message and bit of Theorem 4.5's `O(t²)` schedule to its phase
/// via the plan above; tracing does not perturb the run, so solution and
/// metrics are identical to the untraced stack's. When the stack engages
/// the transport, drops and link outages stretch physical time and add
/// metered retransmissions but leave the solution bit-for-bit identical
/// (asserted against the engine by the `strict-invariants` feature, which
/// also reconciles the log's rollups against the metrics).
///
/// # Errors
///
/// Returns [`KmdsError::Sim`] if the round budget is exceeded (cannot
/// happen for well-formed instances), or — with the transport engaged —
/// wrapping [`ftclust_netsim::SimError::DeliveryFailed`] if loss exceeds
/// a retransmit budget.
///
/// # Panics
///
/// Panics if `params` requests `TwoHopMax` Δ-knowledge: the metered
/// protocol implements global-Δ knowledge only.
pub fn run_fractional_stack(
    inst: &Instance<'_>,
    params: &FractionalParams,
    stack: Stack,
) -> Result<(FractionalProtocolRun, Option<EventLog>), KmdsError> {
    assert_eq!(
        params.knowledge,
        super::DeltaKnowledge::Global,
        "the metered protocol implements global-Δ knowledge; use the engine for TwoHopMax"
    );
    let g = inst.graph();
    let t = params.t;
    let delta = params.resolve_delta(inst);
    let t2 = (t as u64) * (t as u64);
    let _transported = stack.engages_transport();
    // The transport scales its physical ceiling from the exact logical
    // round count (2t² + 3); the synchronous budget carries slack.
    let budget = if _transported { 2 * t2 + 3 } else { 2 * t2 + 8 };
    let run = Executor::new(
        Topology::from_graph(g),
        |v: NodeId| LpNode::new(inst.demand(v), t, delta),
        0,
    )
    .stack(stack)
    .phases(lp_phases(t2))
    .run(budget)?;
    let solution = assemble_solution(inst, t, delta, run.logics.iter());
    #[cfg(feature = "strict-invariants")]
    {
        if _transported {
            crate::audit::loss_transparent(
                "Algorithm 1",
                &solution,
                &super::solve_fractional(inst, params)?,
            );
        }
        if let Some(log) = &run.log {
            if let Err(e) = log.reconcile(&run.metrics) {
                unreachable!("trace rollups diverged from Metrics: {e}");
            }
        }
    }
    Ok((
        FractionalProtocolRun {
            solution,
            metrics: run.metrics,
        },
        run.log,
    ))
}

/// Runs Algorithm 1 as a message-passing protocol and collects metrics.
///
/// # Errors
///
/// Returns [`KmdsError::Sim`] if the simulation exceeds its round budget
/// (cannot happen for well-formed instances; the budget is `2t² + 8`).
///
/// # Example
///
/// ```
/// use ftclust_core::fractional::{protocol::run_fractional_protocol, FractionalParams};
/// use ftclust_core::Instance;
/// use ftclust_graphs::generators;
///
/// let g = generators::cycle(12);
/// let inst = Instance::uniform(&g, 2)?;
/// let run = run_fractional_protocol(&inst, &FractionalParams::new(3))?;
/// assert_eq!(run.metrics.rounds, 2 * 9 + 3); // 2t² + 3
/// assert!(run.solution.is_primal_feasible(&inst, 1e-9));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn run_fractional_protocol(
    inst: &Instance<'_>,
    params: &FractionalParams,
) -> Result<FractionalProtocolRun, KmdsError> {
    run_fractional_stack(inst, params, Stack::new()).map(|(run, _)| run)
}

/// [`run_fractional_protocol`] with a recorded [`EventLog`].
///
/// # Errors
///
/// As [`run_fractional_protocol`].
///
/// # Panics
///
/// As [`run_fractional_protocol`].
#[deprecated(
    note = "compose layers with `run_fractional_stack(inst, params, Stack::new().traced())`"
)]
pub fn run_fractional_protocol_traced(
    // lint: driver-drift — deprecated shim delegating to the executor stack
    inst: &Instance<'_>,
    params: &FractionalParams,
) -> Result<(FractionalProtocolRun, EventLog), KmdsError> {
    run_fractional_stack(inst, params, Stack::new().traced())
        .map(|(run, log)| (run, log.unwrap_or_default()))
}

/// Runs **Algorithm 1** over **lossy links** through the reliable
/// transport.
///
/// # Errors
///
/// Returns [`KmdsError::Sim`] wrapping
/// [`ftclust_netsim::SimError::DeliveryFailed`] if loss exceeds a
/// retransmit budget, or `RoundLimitExceeded` past the physical-round
/// budget [`TransportConfig::round_budget`].
#[deprecated(
    note = "compose layers with `run_fractional_stack(inst, params, Stack::new().churned(churn).transport(transport))`"
)]
pub fn run_fractional_protocol_lossy(
    // lint: driver-drift — deprecated shim delegating to the executor stack
    inst: &Instance<'_>,
    params: &FractionalParams,
    churn: ChurnPlan,
    transport: TransportConfig,
) -> Result<FractionalProtocolRun, KmdsError> {
    run_fractional_stack(
        inst,
        params,
        Stack::new().churned(churn).transport(transport),
    )
    .map(|(run, _)| run)
}

/// Runs Algorithm 1 on an **asynchronous** network with random message
/// delays up to `max_delay` ticks, using the α-synchronizer of
/// [`ftclust_netsim::synchronizer`] — the reduction the paper invokes in
/// Section 3 ("every synchronous message-passing algorithm can be turned
/// into an asynchronous algorithm with the same time complexity").
///
/// The stack composes partially with asynchrony (see
/// [`ftclust_netsim::exec`]): the loss layer and an adversary's
/// corruption fold into the synchronizer's bundle-loss rate, jitter and
/// duplication are subsumed by its delay and exactly-once semantics, and
/// the transport, churn and partition layers are rejected.
///
/// On a fault-free stack the returned solution is identical to the
/// synchronous protocol's and to the engine's.
///
/// # Errors
///
/// Returns [`KmdsError::Sim`] if the local-round budget is exceeded, or
/// wrapping [`ftclust_netsim::SimError::AsyncStalled`] when injected
/// bundle loss starves a node of a neighbor's round bundle — the
/// synchronizer fails fast instead of computing from a partial inbox.
///
/// # Panics
///
/// As [`Executor::run_async`]: panics if `max_delay == 0` or the stack
/// engages the transport, churn, or partition layers.
pub fn run_fractional_async_stack(
    inst: &Instance<'_>,
    params: &FractionalParams,
    max_delay: u64,
    stack: Stack,
) -> Result<FractionalSolution, KmdsError> {
    assert_eq!(
        params.knowledge,
        super::DeltaKnowledge::Global,
        "the metered protocol implements global-Δ knowledge; use the engine for TwoHopMax"
    );
    let g = inst.graph();
    let t = params.t;
    let delta = params.resolve_delta(inst);
    let budget = 2 * (t as u64) * (t as u64) + 8;
    let (run, _) = Executor::new(
        Topology::from_graph(g),
        |v: NodeId| LpNode::new(inst.demand(v), t, delta),
        0,
    )
    .stack(stack)
    .run_async(max_delay, budget)?;
    Ok(assemble_solution(inst, t, delta, run.logics.iter()))
}

/// [`run_fractional_async_stack`] on the empty stack.
///
/// # Errors
///
/// As [`run_fractional_async_stack`].
#[deprecated(note = "use `run_fractional_async_stack` (composes with the executor stack)")]
pub fn run_fractional_protocol_async(
    inst: &Instance<'_>,
    params: &FractionalParams,
    max_delay: u64,
) -> Result<FractionalSolution, KmdsError> {
    run_fractional_async_stack(inst, params, max_delay, Stack::new())
}

#[cfg(test)]
#[allow(deprecated)] // the shims stay under test to pin their parity with the stack
mod tests {
    use super::*;
    use crate::fractional::solve_fractional;
    use ftclust_graphs::generators;

    #[test]
    fn asynchronous_execution_matches_engine() {
        let g = generators::gnp(30, 0.2, 6);
        let inst = Instance::uniform_clamped(&g, 2);
        let params = FractionalParams::new(2);
        let engine = solve_fractional(&inst, &params).unwrap();
        let asynced = run_fractional_protocol_async(&inst, &params, 5).unwrap();
        assert_eq!(engine, asynced);
    }

    #[test]
    fn protocol_equals_engine_bit_for_bit() {
        for (g, k) in [
            (generators::cycle(10), 2u32),
            (generators::gnp(40, 0.15, 3), 2),
            (generators::star(8), 1),
            (generators::grid_2d(5, 4), 3),
            (generators::empty(4), 1),
        ] {
            let inst = Instance::uniform_clamped(&g, k);
            for t in [1, 2, 3] {
                let params = FractionalParams::new(t);
                let engine = solve_fractional(&inst, &params).unwrap();
                let proto = run_fractional_protocol(&inst, &params).unwrap().solution;
                assert_eq!(engine, proto, "engine/protocol divergence at t={t}");
            }
        }
    }

    #[test]
    fn round_complexity_is_2t2_plus_3() {
        let g = generators::gnp(30, 0.2, 1);
        let inst = Instance::uniform_clamped(&g, 2);
        for t in [1, 2, 4] {
            let run = run_fractional_protocol(&inst, &FractionalParams::new(t)).unwrap();
            assert_eq!(run.metrics.rounds, 2 * (t as u64).pow(2) + 3);
        }
    }

    #[test]
    fn message_bits_are_logarithmic() {
        let g = generators::gnp(200, 0.05, 9);
        let inst = Instance::uniform_clamped(&g, 2);
        let run = run_fractional_protocol(&inst, &FractionalParams::new(3)).unwrap();
        // 2 values + a degree: comfortably O(log n).
        assert!(run.metrics.max_message_bits <= (3 * VALUE_BITS) as u64);
        assert!(run.metrics.messages > 0);
    }

    #[test]
    fn lossy_execution_matches_engine() {
        let g = generators::gnp(30, 0.2, 6);
        let inst = Instance::uniform_clamped(&g, 2);
        let params = FractionalParams::new(2);
        let engine = solve_fractional(&inst, &params).unwrap();
        for p in [0.0, 0.05, 0.2] {
            let run = run_fractional_protocol_lossy(
                &inst,
                &params,
                ChurnPlan::none().drop_probability(p),
                TransportConfig::default(),
            )
            .unwrap();
            assert_eq!(engine, run.solution, "diverged at p = {p}");
            if p == 0.0 {
                assert_eq!(run.metrics.retransmits, 0, "spurious retransmits at p = 0");
            } else {
                assert!(run.metrics.retransmits > 0, "no retransmits at p = {p}");
            }
        }
    }

    #[test]
    fn isolated_nodes_complete_locally() {
        let g = generators::empty(3);
        let inst = Instance::uniform_clamped(&g, 1);
        let run = run_fractional_protocol(&inst, &FractionalParams::new(2)).unwrap();
        assert_eq!(run.solution.x, vec![1.0, 1.0, 1.0]);
        assert_eq!(run.metrics.messages, 0);
    }

    #[test]
    fn traced_run_matches_untraced_and_reconciles() {
        use ftclust_netsim::trace::{REGISTERED_SPANS, UNSPANNED};
        let g = generators::gnp(40, 0.2, 2);
        let inst = Instance::uniform_clamped(&g, 2);
        let params = FractionalParams::new(2);
        let base = run_fractional_protocol(&inst, &params).unwrap();
        let (traced, log) = run_fractional_protocol_traced(&inst, &params).unwrap();
        assert_eq!(base.solution, traced.solution);
        assert_eq!(base.metrics, traced.metrics);
        log.reconcile(&traced.metrics).unwrap();
        let rollups = log.rollups();
        for r in &rollups {
            assert!(
                r.name == UNSPANNED || REGISTERED_SPANS.contains(&r.name),
                "unregistered span {:?}",
                r.name
            );
        }
        for expected in ["dyndeg", "raise", "threshold", "dual_exchange"] {
            assert!(
                rollups.iter().any(|r| r.name == expected),
                "missing phase {expected}"
            );
        }
    }
}
