//! The end-to-end general-graph pipeline: Algorithm 1 (fractional LP
//! approximation) followed by Algorithm 2 (randomized rounding).
//!
//! By Theorems 4.5 and 4.6 the result is an expected
//! `O(t Δ^{2/t} log Δ)`-approximate k-fold dominating set computed in
//! `O(t²)` rounds — the paper's headline result for general graphs.

use crate::fractional::{
    protocol::run_fractional_protocol, solve_fractional, FractionalParams, FractionalSolution,
};
use crate::rounding::{
    protocol::run_rounding_protocol, round_fractional, RoundingOutcome, RoundingParams,
};
use crate::{DominatingSet, Instance, KmdsError};
use ftclust_netsim::Metrics;

/// Configuration of the combined pipeline.
///
/// # Example
///
/// ```
/// use ftclust_core::general::GeneralPipeline;
/// use ftclust_core::validate::{is_k_dominating_instance, Semantics};
/// use ftclust_core::Instance;
/// use ftclust_graphs::generators;
///
/// let g = generators::gnp(120, 0.08, 3);
/// let inst = Instance::uniform_clamped(&g, 2);
/// let run = GeneralPipeline::new(3).seed(11).run(&inst)?;
/// assert!(is_k_dominating_instance(&inst, &run.set, Semantics::CoverSelf));
/// # Ok::<(), ftclust_core::KmdsError>(())
/// ```
#[derive(Debug, Clone)]
pub struct GeneralPipeline {
    params: FractionalParams,
    rounding: RoundingParams,
    seed: u64,
    metered: bool,
}

/// Result of a pipeline run.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneralRun {
    /// The integral k-fold dominating set.
    pub set: DominatingSet,
    /// The intermediate fractional solution with its dual certificate.
    pub fractional: FractionalSolution,
    /// Rounding statistics.
    pub rounding: RoundingOutcome,
    /// Communication metrics when run in metered (protocol) mode:
    /// `(algorithm 1, algorithm 2)`.
    pub metrics: Option<(Metrics, Metrics)>,
}

impl GeneralRun {
    /// The certified approximation ratio against the LP lower bound
    /// (`None` when the lower bound is zero, e.g. on zero-demand
    /// instances).
    pub fn certified_ratio(&self) -> Option<f64> {
        (self.fractional.lower_bound > 0.0)
            .then(|| self.set.len() as f64 / self.fractional.lower_bound)
    }
}

impl GeneralPipeline {
    /// A pipeline with trade-off parameter `t`, seed 0, default rounding
    /// and the fast engine execution.
    ///
    /// # Panics
    ///
    /// Panics if `t == 0`.
    pub fn new(t: u32) -> Self {
        GeneralPipeline {
            params: FractionalParams::new(t),
            rounding: RoundingParams::default(),
            seed: 0,
            metered: false,
        }
    }

    /// Sets the random seed (affects only the rounding step; Algorithm 1
    /// is deterministic).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the rounding parameters.
    pub fn rounding(mut self, params: RoundingParams) -> Self {
        self.rounding = params;
        self
    }

    /// Overrides the fractional parameters (e.g. a `Δ` hint).
    pub fn fractional(mut self, params: FractionalParams) -> Self {
        self.params = params;
        self
    }

    /// Runs both stages as message-passing protocols, collecting round and
    /// bit metrics (slower; identical results).
    pub fn metered(mut self, metered: bool) -> Self {
        self.metered = metered;
        self
    }

    /// Executes the pipeline.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors from metered mode (round budgets are
    /// generous; errors indicate bugs, not inputs).
    pub fn run(&self, inst: &Instance<'_>) -> Result<GeneralRun, KmdsError> {
        if self.metered {
            let frac = run_fractional_protocol(inst, &self.params)?;
            let round = run_rounding_protocol(
                inst,
                &frac.solution.x,
                frac.solution.delta,
                self.seed,
                &self.rounding,
            )?;
            Ok(GeneralRun {
                set: round.outcome.set.clone(),
                fractional: frac.solution,
                rounding: round.outcome,
                metrics: Some((frac.metrics, round.metrics)),
            })
        } else {
            let fractional = solve_fractional(inst, &self.params)?;
            let rounding = round_fractional(
                inst,
                &fractional.x,
                fractional.delta,
                self.seed,
                &self.rounding,
            );
            Ok(GeneralRun {
                set: rounding.set.clone(),
                fractional,
                rounding,
                metrics: None,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::{is_k_dominating_instance, Semantics};
    use ftclust_graphs::generators;

    #[test]
    fn engine_and_metered_agree() {
        let g = generators::gnp(40, 0.15, 8);
        let inst = Instance::uniform_clamped(&g, 2);
        let fast = GeneralPipeline::new(2).seed(5).run(&inst).unwrap();
        let metered = GeneralPipeline::new(2)
            .seed(5)
            .metered(true)
            .run(&inst)
            .unwrap();
        assert_eq!(fast.set, metered.set);
        assert_eq!(fast.fractional, metered.fractional);
        let (m1, m2) = metered.metrics.unwrap();
        assert_eq!(m1.rounds, 2 * 4 + 3);
        assert!(m2.rounds <= 3);
    }

    #[test]
    fn feasible_across_k_and_t() {
        for k in [1u32, 2, 3] {
            for t in [1u32, 3] {
                let g = generators::gnp(70, 0.12, k as u64 * 10 + t as u64);
                let inst = Instance::uniform_clamped(&g, k);
                let run = GeneralPipeline::new(t).seed(1).run(&inst).unwrap();
                assert!(
                    is_k_dominating_instance(&inst, &run.set, Semantics::CoverSelf),
                    "infeasible at k={k}, t={t}"
                );
                if let Some(r) = run.certified_ratio() {
                    assert!(r >= 1.0 - 1e-9);
                }
            }
        }
    }

    #[test]
    fn metered_agrees_on_per_node_demands() {
        let g = generators::gnp(35, 0.2, 12);
        let demands: Vec<u32> = g
            .nodes()
            .map(|v| (v.raw() % 3).min(g.degree(v) as u32 + 1))
            .collect();
        let inst = Instance::with_demands(&g, demands).unwrap();
        let fast = GeneralPipeline::new(2).seed(9).run(&inst).unwrap();
        let metered = GeneralPipeline::new(2)
            .seed(9)
            .metered(true)
            .run(&inst)
            .unwrap();
        assert_eq!(fast.set, metered.set);
        assert_eq!(fast.fractional, metered.fractional);
        assert!(is_k_dominating_instance(
            &inst,
            &fast.set,
            Semantics::CoverSelf
        ));
    }

    #[test]
    fn certified_ratio_none_on_zero_demand() {
        let g = generators::path(4);
        let inst = Instance::with_demands(&g, vec![0, 0, 0, 0]).unwrap();
        let run = GeneralPipeline::new(2).run(&inst).unwrap();
        assert!(run.certified_ratio().is_none());
        assert_eq!(run.set.len(), 0);
    }
}
