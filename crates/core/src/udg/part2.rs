//! Part II of Algorithm 3: extending the leader set to a k-fold
//! dominating set.

use super::PromotionRule;
use crate::bitset::{coverage_counts, BitSet};
use crate::{DominatingSet, KmdsError};
use ftclust_graphs::{Graph, NodeId};
use ftclust_netsim::node_rng;
use ftclust_par as par;
use rand::rngs::StdRng;
use rand::Rng;

/// One worker's contiguous block of a promotion iteration: the RNG streams
/// it owns, plus a local list of promotion targets. Each leader draws only
/// from its own stream; targets are OR-merged afterwards (commutative), so
/// the outcome matches the serial scan exactly.
struct PromoShard<'s> {
    start: usize,
    rngs: &'s mut [StdRng],
    targets: Vec<NodeId>,
    /// Per-leader needy-neighbor list, reused across the shard's leaders
    /// so an iteration allocates at most one list per worker.
    scratch: Vec<NodeId>,
}

/// Where Part II gets its per-node random streams from.
#[derive(Debug)]
pub(crate) enum RngSource {
    /// Derive fresh per-node streams from a master seed.
    #[cfg_attr(not(test), allow(dead_code))] // exercised by unit tests and standalone callers
    Seed(u64),
    /// Continue existing streams (the post-Part-I state).
    Streams(Vec<StdRng>),
}

/// Picks up to `k` promotion targets from the (ascending) list of needy
/// neighbors, per the configured rule. Shared with the protocol so both
/// implementations draw identically.
pub(crate) fn select_promotions(
    needy: &[NodeId],
    coverage: impl Fn(NodeId) -> u32,
    k: usize,
    rule: PromotionRule,
    rng: &mut StdRng,
) -> Vec<NodeId> {
    if needy.len() <= k {
        return needy.to_vec();
    }
    match rule {
        PromotionRule::LowestId => needy[..k].to_vec(),
        PromotionRule::MostDeficient => {
            let mut sorted = needy.to_vec();
            sorted.sort_by_key(|&v| (coverage(v), v));
            sorted.truncate(k);
            sorted
        }
        PromotionRule::Random => {
            let mut pool = needy.to_vec();
            let mut chosen = Vec::with_capacity(k);
            for _ in 0..k {
                let idx = rng.random_range(0..pool.len());
                chosen.push(pool.swap_remove(idx));
            }
            chosen
        }
    }
}

/// Runs Part II in memory: synchronous iterations in which every leader
/// promotes up to `k` of its uncovered neighbors, until every non-leader
/// has at least `k` leader neighbors.
///
/// `rngs` are the per-node random streams (pass the post-Part-I streams to
/// match the protocol; `None` derives fresh streams from `seed`).
///
/// Returns the final set and the number of while-loop iterations.
///
/// # Errors
///
/// Returns [`KmdsError::IterationLimit`] if an iteration makes no progress
/// — impossible when the input `leaders` dominate the graph (Lemma 5.1),
/// checked defensively.
pub(crate) fn run_part2(
    g: &Graph,
    leaders: &DominatingSet,
    k: u32,
    rng_source: RngSource,
    rule: PromotionRule,
) -> Result<(DominatingSet, u32), KmdsError> {
    let n = g.node_count();
    let mut leader = BitSet::from_bools(leaders.as_members());
    let mut rngs: Vec<StdRng> = match rng_source {
        RngSource::Seed(seed) => par::par_map_range(n, |i| node_rng(seed, NodeId::new(i as u32))),
        RngSource::Streams(rngs) => {
            assert_eq!(rngs.len(), n, "rng stream count mismatch");
            rngs
        }
    };
    let mut iterations = 0u32;
    loop {
        // Coverage snapshot: number of leaders in each closed neighborhood
        // (for a non-leader this equals the leader count among neighbors).
        let cov = coverage_counts(g, &leader);
        let needy = BitSet::from_fn_par(n, |i| !leader.get(i) && cov[i] < k);
        if !needy.any() {
            break;
        }
        iterations += 1;
        // Promotion scan: each leader draws from its own stream, so RNG
        // shards follow the node sharding; the scatter into `promoted` is
        // a commutative OR, merged after the parallel part.
        let mut shards: Vec<PromoShard<'_>> = Vec::new();
        let mut rngs_rest = &mut rngs[..];
        for r in par::split_ranges(n, par::num_threads()) {
            let (rngs_here, rngs_next) = rngs_rest.split_at_mut(r.len());
            rngs_rest = rngs_next;
            shards.push(PromoShard {
                start: r.start,
                rngs: rngs_here,
                targets: Vec::new(),
                scratch: Vec::new(),
            });
        }
        par::par_for_each_mut(&mut shards, |_, s| {
            for j in 0..s.rngs.len() {
                let i = s.start + j;
                if !leader.get(i) {
                    continue;
                }
                let v = NodeId::new(i as u32);
                s.scratch.clear();
                s.scratch.extend(
                    g.neighbors(v)
                        .iter()
                        .copied()
                        .filter(|w| needy.get(w.index())),
                );
                if s.scratch.is_empty() {
                    continue;
                }
                let picks = select_promotions(
                    &s.scratch,
                    |w| cov[w.index()],
                    k as usize,
                    rule,
                    &mut s.rngs[j],
                );
                s.targets.extend(picks);
            }
        });
        let mut promoted = BitSet::new(n);
        for s in &shards {
            for w in &s.targets {
                promoted.insert(w.index());
            }
        }
        if !promoted.any_outside(&leader) {
            return Err(KmdsError::IterationLimit {
                stage: "udg part 2",
                limit: iterations as u64,
            });
        }
        leader.or_assign(&promoted);
    }
    Ok((DominatingSet::from_members(leader.to_bools()), iterations))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::{is_k_dominating, Semantics};
    use ftclust_graphs::generators;

    fn dominating_seed(g: &Graph) -> DominatingSet {
        // A trivially valid starting point: a maximal independent set by
        // greedy scan is a dominating set.
        let mut set = DominatingSet::empty(g.node_count());
        for v in g.nodes() {
            if g.closed_neighbors(v).all(|w| !set.contains(w)) {
                set.insert(v);
            }
        }
        set
    }

    #[test]
    fn extends_to_k_fold() {
        for k in [1u32, 2, 3] {
            let g = generators::gnp(80, 0.15, k as u64);
            let leaders = dominating_seed(&g);
            let (set, iters) =
                run_part2(&g, &leaders, k, RngSource::Seed(0), PromotionRule::LowestId).unwrap();
            assert!(is_k_dominating(&g, &set, k, Semantics::Strict), "k={k}");
            if k == 1 {
                // A dominating set needs no extension.
                assert_eq!(iters, 0);
                assert_eq!(set, leaders);
            }
        }
    }

    #[test]
    fn promotion_rules_all_terminate_quickly() {
        let g = generators::gnp(120, 0.1, 5);
        let leaders = dominating_seed(&g);
        for rule in [
            PromotionRule::LowestId,
            PromotionRule::MostDeficient,
            PromotionRule::Random,
        ] {
            let (set, iters) = run_part2(&g, &leaders, 3, RngSource::Seed(1), rule).unwrap();
            assert!(is_k_dominating(&g, &set, 3, Semantics::Strict));
            assert!(iters <= 10, "{rule:?} took {iters} iterations");
        }
    }

    #[test]
    fn select_promotions_rules() {
        let needy: Vec<NodeId> = [1u32, 2, 3, 4].into_iter().map(NodeId::new).collect();
        let cov = |v: NodeId| match v.raw() {
            2 => 0u32,
            4 => 1,
            _ => 5,
        };
        let mut rng = node_rng(0, NodeId::new(0));
        assert_eq!(
            select_promotions(&needy, cov, 2, PromotionRule::LowestId, &mut rng),
            vec![NodeId::new(1), NodeId::new(2)]
        );
        assert_eq!(
            select_promotions(&needy, cov, 2, PromotionRule::MostDeficient, &mut rng),
            vec![NodeId::new(2), NodeId::new(4)]
        );
        let random = select_promotions(&needy, cov, 2, PromotionRule::Random, &mut rng);
        assert_eq!(random.len(), 2);
        assert!(random.iter().all(|v| needy.contains(v)));
        // Fewer needy than k: take all, regardless of rule.
        assert_eq!(
            select_promotions(&needy, cov, 9, PromotionRule::Random, &mut rng),
            needy
        );
    }

    #[test]
    fn full_leader_set_is_already_done() {
        let g = generators::cycle(8);
        let all = DominatingSet::full(8);
        let (set, iters) =
            run_part2(&g, &all, 2, RngSource::Seed(0), PromotionRule::LowestId).unwrap();
        assert_eq!(set.len(), 8);
        assert_eq!(iters, 0);
    }
}
