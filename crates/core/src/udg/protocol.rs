//! Message-passing implementation of Algorithm 3 on [`ftclust_netsim`].
//!
//! **Part I** takes two simulator rounds per paper round `i`:
//!
//! * phase 0: (process last round's election messages;) active nodes draw
//!   `ID_i ∈ [1, n⁴]` and send it to every neighbor within `θ_i`
//!   (lines 5–7),
//! * phase 1: active nodes elect the maximum identifier among the received
//!   ones and their own, and send `M` to the winner — possibly themselves
//!   (lines 8–9); a node that receives no `M` turns passive (lines 10–12).
//!
//! **Part II** runs iterations of three rounds: leader-status broadcast,
//! needy announcements (`c(v) < k`), and promotions. A node halts once
//! neither it nor any neighbor is needy; leader statuses are cached so
//! halted neighbors (whose status can no longer change) stay correctly
//! known.
//!
//! Identifier messages are metered at `4·⌈log₂ n⌉` bits — the paper's
//! `[1, n⁴]` range — plus a bit; everything else is `O(log k)` or a single
//! bit. This is the protocol whose maximum message size scales visibly as
//! `Θ(log n)` in experiment E8.
//!
//! Seed-for-seed identical to the engine ([`super::UdgAlgorithm::run`]).

use super::part1::{id_cap, theta_schedule};
use super::part2::select_promotions;
use super::{IdMode, PromotionRule, UdgAlgorithm, UdgRun};
use crate::{DominatingSet, KmdsError};
use ftclust_graphs::{NodeId, UnitDiskGraph};
use ftclust_netsim::exec::{completed_iterations, Executor, Phase, Stack};
use ftclust_netsim::transport::TransportConfig;
use ftclust_netsim::{
    bits_for_ids, ChurnPlan, Context, Control, Envelope, EventLog, Metrics, NodeLogic, Payload,
    Topology,
};
use rand::Rng;

/// Wire messages of the UDG protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UdgMsg {
    /// Part I identifier announcement; `id_bits` is the metered width of
    /// the identifier (4·⌈log₂ n⌉ for the `[1, n⁴]` range).
    Id {
        /// The round's random identifier.
        id: u64,
        /// Metered identifier width in bits.
        id_bits: u16,
    },
    /// Part I election message `M`.
    Elect,
    /// Part II leader-status broadcast.
    Status {
        /// Whether the sender is currently a leader.
        leader: bool,
    },
    /// Part II "I am needy" announcement with the sender's current
    /// coverage (needed by the `MostDeficient` promotion rule).
    Needy {
        /// Leaders currently covering the sender (`< k`).
        cov: u32,
    },
    /// Part II promotion order.
    Promote,
}

impl Payload for UdgMsg {
    fn bit_size(&self) -> usize {
        match self {
            UdgMsg::Id { id_bits, .. } => 1 + *id_bits as usize,
            UdgMsg::Elect | UdgMsg::Promote => 1,
            UdgMsg::Status { .. } => 1,
            UdgMsg::Needy { cov } => 1 + bits_for_ids(*cov as usize + 2),
        }
    }
}

/// Per-node protocol state for Algorithm 3.
#[derive(Debug)]
pub struct UdgNode {
    k: u32,
    id_mode: IdMode,
    promotion: PromotionRule,
    /// Part I: consideration radii (absolute).
    schedule: Vec<f64>,
    id_cap: u64,
    id_bits: u16,
    active: bool,
    my_id: u64,
    fixed_drawn: bool,
    /// Paper round after which this node turned passive (None = leader).
    pub passive_after: Option<u32>,
    /// Part II state.
    pub leader: bool,
    neighbor_leader: Vec<bool>,
    my_needy: bool,
}

impl UdgNode {
    fn part1_rounds(&self) -> u64 {
        self.schedule.len() as u64
    }
}

impl NodeLogic for UdgNode {
    type Payload = UdgMsg;

    fn on_round(&mut self, inbox: &[Envelope<UdgMsg>], ctx: &mut Context<'_, UdgMsg>) -> Control {
        let r = ctx.round();
        let base = 2 * self.part1_rounds();
        if r < base {
            let paper_round = (r / 2) as usize; // 0-based
            if r % 2 == 0 {
                // Phase 0: process last round's elections, then announce.
                if paper_round > 0 && self.active {
                    let got_m = inbox.iter().any(|e| matches!(e.payload, UdgMsg::Elect));
                    if !got_m {
                        self.active = false;
                        self.passive_after = Some(paper_round as u32);
                    }
                }
                if self.active {
                    match self.id_mode {
                        IdMode::FreshPerRound => {
                            self.my_id = ctx.rng().random_range(1..=self.id_cap);
                        }
                        IdMode::FixedAtStart => {
                            if !self.fixed_drawn {
                                self.my_id = ctx.rng().random_range(1..=self.id_cap);
                                self.fixed_drawn = true;
                            }
                        }
                    }
                    let theta = self.schedule[paper_round];
                    let (id, id_bits) = (self.my_id, self.id_bits);
                    let within: Vec<NodeId> = ctx
                        .neighbors()
                        .iter()
                        .copied()
                        .filter(|&w| match ctx.distance_to(w) {
                            Some(d) => d <= theta,
                            None => unreachable!("UDG topologies sense all neighbor distances"),
                        })
                        .collect();
                    for w in within {
                        ctx.send(w, UdgMsg::Id { id, id_bits });
                    }
                }
            } else if self.active {
                // Phase 1: elect the maximum (id, node) among A_v ∪ {me}.
                let mut best = (self.my_id, ctx.me());
                for e in inbox {
                    if let UdgMsg::Id { id, .. } = e.payload {
                        if (id, e.from) > best {
                            best = (id, e.from);
                        }
                    }
                }
                ctx.send(best.1, UdgMsg::Elect);
            }
            return Control::Continue;
        }
        // Part II.
        let phase = (r - base) % 3;
        match phase {
            0 => {
                if r == base {
                    // Final Part I election processing: survivors lead.
                    if self.active {
                        let got_m = inbox.iter().any(|e| matches!(e.payload, UdgMsg::Elect));
                        if !got_m {
                            self.active = false;
                            self.passive_after = Some(self.part1_rounds() as u32);
                        }
                    }
                    self.leader = self.active;
                    self.neighbor_leader = vec![false; ctx.degree()];
                } else {
                    // Accept promotions from the previous iteration.
                    if inbox.iter().any(|e| matches!(e.payload, UdgMsg::Promote)) {
                        self.leader = true;
                    }
                }
                ctx.broadcast(UdgMsg::Status {
                    leader: self.leader,
                });
                Control::Continue
            }
            1 => {
                // Refresh cached neighbor statuses; halted neighbors sent
                // nothing and their cached status is final.
                for e in inbox {
                    if let UdgMsg::Status { leader } = e.payload {
                        let Ok(pos) = ctx.neighbors().binary_search(&e.from) else {
                            unreachable!("inbox messages arrive only from neighbors");
                        };
                        self.neighbor_leader[pos] = leader;
                    }
                }
                let cov = u32::from(self.leader)
                    + self.neighbor_leader.iter().filter(|&&b| b).count() as u32;
                self.my_needy = !self.leader && cov < self.k;
                if self.my_needy {
                    ctx.broadcast(UdgMsg::Needy { cov });
                }
                Control::Continue
            }
            _ => {
                // Collect needy neighbors (ascending by construction).
                let needy: Vec<(NodeId, u32)> = inbox
                    .iter()
                    .filter_map(|e| match e.payload {
                        UdgMsg::Needy { cov } => Some((e.from, cov)),
                        _ => None,
                    })
                    .collect();
                if self.leader && !needy.is_empty() {
                    let ids: Vec<NodeId> = needy.iter().map(|&(v, _)| v).collect();
                    let cov_of = |v: NodeId| match needy.iter().find(|&&(w, _)| w == v) {
                        Some(&(_, c)) => c,
                        None => unreachable!("promotion candidates come from `needy`"),
                    };
                    let chosen =
                        select_promotions(&ids, cov_of, self.k as usize, self.promotion, ctx.rng());
                    for w in chosen {
                        ctx.send(w, UdgMsg::Promote);
                    }
                }
                if !self.my_needy && needy.is_empty() {
                    Control::Halt
                } else {
                    Control::Continue
                }
            }
        }
    }
}

/// Result of a metered Algorithm 3 execution.
#[derive(Debug, Clone)]
pub struct UdgProtocolRun {
    /// The algorithm outputs (identical to the engine's).
    pub run: UdgRun,
    /// Rounds, messages and bits used.
    pub metrics: Metrics,
}

/// Algorithm 3's declarative span plan: each Part I doubling-radius
/// iteration runs under `part1_round(i)` (`i` indexes the θ schedule;
/// every iteration spans the two simulator rounds of its broadcast/decide
/// pair, Theorem 5.7's `O(log log n)` loop) and each Part II greedy step
/// under `part2_promotion(j)` (the 3-round status/needy/promote cycle;
/// nodes only halt at the end of a cycle, so quiescence is always
/// observed on a cycle boundary).
fn udg_phases(part1_rounds: u32) -> Vec<Phase> {
    let mut plan = Vec::with_capacity(part1_rounds as usize + 1);
    for i in 0..u64::from(part1_rounds) {
        plan.push(Phase::indexed("part1_round", i, 2));
    }
    plan.push(Phase::repeat("part2_promotion", 3));
    plan
}

/// The [`UdgProtocolRun`] of a zero-node instance, where no protocol runs.
fn empty_udg_run() -> UdgProtocolRun {
    UdgProtocolRun {
        run: UdgRun {
            set: DominatingSet::empty(0),
            leaders: DominatingSet::empty(0),
            part1_rounds: 0,
            part2_iterations: 0,
            active_history: vec![],
        },
        metrics: Metrics::default(),
    }
}

/// Runs **Algorithm 3** through the composable executor stack of
/// [`ftclust_netsim::exec`]: the reliable transport (loss masking), churn
/// and tracing layers selected by `stack` compose freely. This is the
/// canonical driver — [`run_udg_protocol`] and the historical
/// `_lossy`/`_traced` entry points are thin shims over it.
///
/// When the stack is traced, [`EventLog::rollups`] splits the run's cost
/// between Part I sparsification and Part II promotion via the plan
/// above. When the transport is engaged, drops and outage windows add
/// metered retransmissions but leave the computed set, leaders and
/// iteration counts seed-for-seed identical to the lossless run's
/// (asserted against the engine by the `strict-invariants` feature,
/// which also reconciles the log's rollups against the metrics); the
/// Part II iteration count is derived from the transport's **logical**
/// round count, which loss cannot inflate.
///
/// # Errors
///
/// Returns [`KmdsError::Sim`] if the round budget (`2·part1 + 3·(n+2)`)
/// is exceeded — impossible for valid unit disk graphs — or, with the
/// transport engaged, if loss exhausts a retransmit budget.
pub fn run_udg_stack(
    udg: &UnitDiskGraph,
    config: &UdgAlgorithm,
    stack: Stack,
) -> Result<(UdgProtocolRun, Option<EventLog>), KmdsError> {
    let n = udg.node_count();
    if n == 0 {
        let log = stack.is_traced().then(EventLog::new);
        return Ok((empty_udg_run(), log));
    }
    let schedule = theta_schedule(n, udg.radius());
    let part1_rounds = schedule.len() as u32;
    let cap = id_cap(n);
    let id_bits = (4 * bits_for_ids(n.max(2))) as u16;
    let budget = 2 * u64::from(part1_rounds) + 3 * (n as u64 + 2) + 8;
    let _transported = stack.engages_transport();
    let run = Executor::new(
        Topology::from_udg(udg),
        |_: NodeId| UdgNode {
            k: config.k,
            id_mode: config.id_mode,
            promotion: config.promotion,
            schedule: schedule.clone(),
            id_cap: cap,
            id_bits,
            active: true,
            my_id: 0,
            fixed_drawn: false,
            passive_after: None,
            leader: false,
            neighbor_leader: Vec::new(),
            my_needy: false,
        },
        config.seed,
    )
    .stack(stack)
    .phases(udg_phases(part1_rounds))
    .run(budget)?;
    let assembled = assemble_run(part1_rounds, run.logical_rounds, run.logics.iter());
    #[cfg(feature = "strict-invariants")]
    {
        if _transported {
            crate::audit::loss_transparent("Algorithm 3", &assembled, &config.run(udg)?);
        }
        if let Some(log) = &run.log {
            if let Err(e) = log.reconcile(&run.metrics) {
                unreachable!("trace rollups diverged from Metrics: {e}");
            }
        }
    }
    Ok((
        UdgProtocolRun {
            run: assembled,
            metrics: run.metrics,
        },
        run.log,
    ))
}

/// Runs **Algorithm 3** as a message-passing protocol with distance
/// sensing, collecting communication metrics.
///
/// # Errors
///
/// Returns [`KmdsError::Sim`] if the round budget (`2·part1 + 3·(n+2)`) is
/// exceeded — impossible for valid unit disk graphs.
pub fn run_udg_protocol(
    udg: &UnitDiskGraph,
    config: &UdgAlgorithm,
) -> Result<UdgProtocolRun, KmdsError> {
    run_udg_stack(udg, config, Stack::new()).map(|(run, _)| run)
}

/// [`run_udg_protocol`] with a recorded [`EventLog`].
///
/// # Errors
///
/// As [`run_udg_protocol`].
#[deprecated(note = "compose layers with `run_udg_stack(udg, config, Stack::new().traced())`")]
pub fn run_udg_protocol_traced(
    // lint: driver-drift — deprecated shim delegating to the executor stack
    udg: &UnitDiskGraph,
    config: &UdgAlgorithm,
) -> Result<(UdgProtocolRun, EventLog), KmdsError> {
    run_udg_stack(udg, config, Stack::new().traced())
        .map(|(run, log)| (run, log.unwrap_or_default()))
}

/// Assembles the [`UdgRun`] from the final per-node states — shared by
/// the lossless and lossy runners. `logical_rounds` is the number of
/// protocol rounds *executed by the nodes* (equal to the simulator rounds
/// in a lossless run, and to the transport's logical-round count in a
/// lossy one), from which the Part II iteration count is derived.
fn assemble_run<'n>(
    part1_rounds: u32,
    logical_rounds: u64,
    nodes: impl Iterator<Item = &'n UdgNode>,
) -> UdgRun {
    let mut leaders = Vec::new();
    let mut members = Vec::new();
    let mut passive_after = Vec::new();
    for node in nodes {
        members.push(node.leader);
        leaders.push(node.passive_after.is_none());
        passive_after.push(node.passive_after.unwrap_or(u32::MAX));
    }
    // Reconstruct the per-round active counts: a node is active after
    // paper round i (1-based) iff passive_after > i.
    let active_history: Vec<usize> = (1..=part1_rounds)
        .map(|i| passive_after.iter().filter(|&&p| p > i).count())
        .collect();
    // Part I occupies 2·part1_rounds logical rounds, each Part II
    // iteration a 3-round cycle, and the final cycle is the all-quiet one
    // that merely detects termination.
    let part2_iterations = completed_iterations(logical_rounds, 2 * u64::from(part1_rounds), 3, 3);
    UdgRun {
        set: DominatingSet::from_members(members),
        leaders: DominatingSet::from_members(leaders),
        part1_rounds,
        part2_iterations,
        active_history,
    }
}

/// Runs **Algorithm 3** over **lossy links** via the reliable transport.
///
/// # Errors
///
/// Returns [`KmdsError::Sim`] if loss exhausts a retransmit budget or the
/// physical-round budget is exceeded.
#[deprecated(
    note = "compose layers with `run_udg_stack(udg, config, Stack::new().churned(churn).transport(transport))`"
)]
pub fn run_udg_protocol_lossy(
    // lint: driver-drift — deprecated shim delegating to the executor stack
    udg: &UnitDiskGraph,
    config: &UdgAlgorithm,
    churn: ChurnPlan,
    transport: TransportConfig,
) -> Result<UdgProtocolRun, KmdsError> {
    run_udg_stack(
        udg,
        config,
        Stack::new().churned(churn).transport(transport),
    )
    .map(|(run, _)| run)
}

#[cfg(test)]
#[allow(deprecated)] // the shims stay under test to pin their parity with the stack
mod tests {
    use super::*;
    use crate::validate::{is_k_dominating, Semantics};
    use ftclust_graphs::generators;

    #[test]
    fn protocol_equals_engine() {
        for (k, rule) in [
            (1u32, PromotionRule::LowestId),
            (2, PromotionRule::LowestId),
            (3, PromotionRule::MostDeficient),
            (2, PromotionRule::Random),
        ] {
            for mode in [IdMode::FreshPerRound, IdMode::FixedAtStart] {
                let udg = generators::random_udg(200, 9.0, 1.0, 77);
                let config = UdgAlgorithm::new(k).seed(5).promotion(rule).id_mode(mode);
                let engine = config.run(&udg).unwrap();
                let proto = run_udg_protocol(&udg, &config).unwrap().run;
                assert_eq!(engine, proto, "divergence for k={k}, {rule:?}, {mode:?}");
            }
        }
    }

    #[test]
    fn lossy_execution_matches_engine() {
        let udg = generators::random_udg(120, 8.0, 1.0, 21);
        let config = UdgAlgorithm::new(2).seed(4);
        let engine = config.run(&udg).unwrap();
        for p in [0.0, 0.05, 0.2] {
            let run = run_udg_protocol_lossy(
                &udg,
                &config,
                ChurnPlan::none().drop_probability(p),
                TransportConfig::default(),
            )
            .unwrap();
            assert_eq!(engine, run.run, "diverged at p = {p}");
            if p == 0.0 {
                assert_eq!(run.metrics.retransmits, 0);
            } else {
                assert!(run.metrics.retransmits > 0);
            }
        }
    }

    #[test]
    fn rounds_are_double_logarithmic_plus_constant() {
        let udg = generators::random_udg(1000, 10.0, 1.0, 3);
        let config = UdgAlgorithm::new(2).seed(1);
        let run = run_udg_protocol(&udg, &config).unwrap();
        let r = theta_schedule(1000, 1.0).len() as u64;
        assert!(run.metrics.rounds >= 2 * r);
        assert!(
            run.metrics.rounds <= 2 * r + 3 * 12,
            "part II used too many rounds: {}",
            run.metrics.rounds
        );
        assert!(is_k_dominating(
            udg.graph(),
            &run.run.set,
            2,
            Semantics::Strict
        ));
    }

    #[test]
    fn message_bits_scale_as_four_log_n() {
        let udg = generators::random_udg(500, 8.0, 1.0, 2);
        let run = run_udg_protocol(&udg, &UdgAlgorithm::new(1)).unwrap();
        let expected = 1 + 4 * bits_for_ids(500);
        assert_eq!(run.metrics.max_message_bits, expected as u64);
    }

    #[test]
    fn empty_and_singleton() {
        let empty = ftclust_graphs::UnitDiskGraph::build(vec![], 1.0).unwrap();
        let run = run_udg_protocol(&empty, &UdgAlgorithm::new(2)).unwrap();
        assert_eq!(run.run.set.len(), 0);
        let single =
            ftclust_graphs::UnitDiskGraph::build(vec![ftclust_geometry::Point::new(0.0, 0.0)], 1.0)
                .unwrap();
        let run = run_udg_protocol(&single, &UdgAlgorithm::new(3)).unwrap();
        assert_eq!(run.run.set.len(), 1);
    }

    #[test]
    fn traced_run_matches_untraced_and_reconciles() {
        use ftclust_netsim::trace::{REGISTERED_SPANS, UNSPANNED};
        let udg = generators::random_udg(120, 8.0, 1.0, 11);
        let config = UdgAlgorithm::new(2).seed(4);
        let base = run_udg_protocol(&udg, &config).unwrap();
        let (traced, log) = run_udg_protocol_traced(&udg, &config).unwrap();
        assert_eq!(base.run, traced.run);
        assert_eq!(base.metrics, traced.metrics);
        log.reconcile(&traced.metrics).unwrap();
        let rollups = log.rollups();
        for r in &rollups {
            assert!(
                r.name == UNSPANNED || REGISTERED_SPANS.contains(&r.name),
                "unregistered span {:?}",
                r.name
            );
        }
        for expected in ["part1_round", "part2_promotion"] {
            assert!(
                rollups.iter().any(|r| r.name == expected),
                "missing phase {expected}"
            );
        }
    }
}
