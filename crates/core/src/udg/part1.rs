//! Part I of Algorithm 3: radius-doubling sparsification into leaders.

use super::IdMode;
use crate::bitset::BitSet;
use crate::DominatingSet;
use ftclust_geometry::SpatialGrid;
use ftclust_graphs::{NodeId, UnitDiskGraph};
use ftclust_netsim::node_rng;
use ftclust_par as par;
use rand::rngs::StdRng;
use rand::Rng;

/// One worker's contiguous block of the identifier-draw phase: each node
/// advances only its own RNG stream and writes only its own `ids` /
/// `fixed_drawn` cells, so sharding cannot change any draw.
struct DrawShard<'s> {
    start: usize,
    rngs: &'s mut [StdRng],
    ids: &'s mut [u64],
    fixed_drawn: &'s mut [bool],
}

/// The consideration-radius schedule `θ_1, …, θ_R` in **absolute** units
/// (multiples of `radius`):
///
/// * `ξ = 3/2`, `R = max(1, ⌈log_ξ log₂ n⌉)` rounds,
/// * `θ_i = min(1/2, 2^{i-1}·(log₂ n)^{-1/log₂ ξ}) · radius`.
///
/// The final `θ_R` always equals `radius/2`, so Lemma 5.1's coverage radius
/// `2·θ_R = radius` holds exactly.
pub fn theta_schedule(n: usize, radius: f64) -> Vec<f64> {
    assert!(radius > 0.0, "radius must be positive");
    let log2n = (n.max(4) as f64).log2(); // clamp so tiny n behave sanely
    let xi: f64 = 1.5;
    let rounds = ((log2n.ln() / xi.ln()).ceil() as usize).max(1);
    let theta1 = log2n.powf(-1.0 / xi.log2());
    let mut schedule: Vec<f64> = (0..rounds)
        .map(|i| (2f64.powi(i as i32) * theta1).min(0.5) * radius)
        .collect();
    // Guarantee the last round reaches exactly radius/2 (the ceiling can
    // leave it a shade below otherwise).
    if let Some(last) = schedule.last_mut() {
        *last = 0.5 * radius;
    }
    schedule
}

/// The u64 cap for the paper's identifier range `[1, n⁴]`.
pub(crate) fn id_cap(n: usize) -> u64 {
    (n.max(2) as u128).pow(4).min(u64::MAX as u128) as u64
}

#[derive(Debug)]
pub(crate) struct Part1Outcome {
    pub leaders: DominatingSet,
    pub rounds: u32,
    pub active_history: Vec<usize>,
    /// Active masks at the start of each round, plus the final mask —
    /// `active_masks.len() == rounds + 1`. Used by the Lemma 5.2 per-disk
    /// census in [`super::analysis`].
    pub active_masks: Vec<Vec<bool>>,
    /// Per-node RNG streams in their post-Part-I state, so Part II
    /// continues exactly where the protocol implementation's streams are.
    pub rngs: Vec<StdRng>,
}

/// Runs Part I in memory. Random identifiers come from the per-node
/// streams of [`ftclust_netsim::node_rng`], drawn once per round while the
/// node is active — exactly the draws the protocol implementation makes,
/// so both agree seed-for-seed.
pub(crate) fn run_part1(udg: &UnitDiskGraph, seed: u64, id_mode: IdMode) -> Part1Outcome {
    let n = udg.node_count();
    if n == 0 {
        return Part1Outcome {
            leaders: DominatingSet::empty(0),
            rounds: 0,
            active_history: vec![],
            active_masks: vec![],
            rngs: vec![],
        };
    }
    let schedule = theta_schedule(n, udg.radius());
    let cap = id_cap(n);
    // Per-node streams are seeded independently (SplitMix64 over the node
    // id), so even their construction parallelizes without reordering.
    let mut rngs: Vec<StdRng> = par::par_map_range(n, |i| node_rng(seed, NodeId::new(i as u32)));
    let mut active = BitSet::from_fn_par(n, |_| true);
    let mut ids = vec![0u64; n];
    let mut fixed_drawn = vec![false; n];
    let mut history = Vec::with_capacity(schedule.len());
    let mut masks: Vec<Vec<bool>> = Vec::with_capacity(schedule.len() + 1);

    for &theta in &schedule {
        masks.push(active.to_bools());
        // Draw identifiers for the active nodes (line 5). Each node's draw
        // comes from its own private stream, so contiguous shards produce
        // exactly the serial draws.
        {
            let active = &active;
            let mut shards: Vec<DrawShard<'_>> = Vec::new();
            let (mut rngs_r, mut ids_r, mut fd_r) =
                (&mut rngs[..], &mut ids[..], &mut fixed_drawn[..]);
            for r in par::split_ranges(n, par::num_threads()) {
                let (rngs_h, rngs_n) = rngs_r.split_at_mut(r.len());
                let (ids_h, ids_n) = ids_r.split_at_mut(r.len());
                let (fd_h, fd_n) = fd_r.split_at_mut(r.len());
                rngs_r = rngs_n;
                ids_r = ids_n;
                fd_r = fd_n;
                shards.push(DrawShard {
                    start: r.start,
                    rngs: rngs_h,
                    ids: ids_h,
                    fixed_drawn: fd_h,
                });
            }
            par::par_for_each_mut(&mut shards, |_, s| {
                for j in 0..s.rngs.len() {
                    if !active.get(s.start + j) {
                        continue;
                    }
                    match id_mode {
                        IdMode::FreshPerRound => s.ids[j] = s.rngs[j].random_range(1..=cap),
                        IdMode::FixedAtStart => {
                            if !s.fixed_drawn[j] {
                                s.ids[j] = s.rngs[j].random_range(1..=cap);
                                s.fixed_drawn[j] = true;
                            }
                        }
                    }
                }
            });
        }
        // Build a grid over the active nodes only.
        let active_ids: Vec<u32> = active.iter_ones().map(|i| i as u32).collect();
        let active_pos: Vec<_> =
            par::par_map_indexed(&active_ids, |_, &i| udg.position(NodeId::new(i)));
        let grid = SpatialGrid::build(&active_pos, theta.max(1e-12));
        // Election (lines 8–12): each active node elects the max-identifier
        // active node within θ (ties by node id), possibly itself. The
        // winner scan per node is independent; the scatter into `elected`
        // is a commutative OR, merged serially in index order.
        let winners: Vec<u32> = par::par_map_range(active_ids.len(), |gi| {
            let i = active_ids[gi];
            let mut best = (ids[i as usize], i);
            grid.for_each_within(active_pos[gi], theta, |gj| {
                let j = active_ids[gj as usize];
                let key = (ids[j as usize], j);
                if key > best {
                    best = key;
                }
            });
            best.1
        });
        let mut elected = BitSet::new(n);
        for w in winners {
            elected.insert(w as usize);
        }
        active.and_assign(&elected);
        history.push(active.count());
    }
    let final_mask = active.to_bools();
    masks.push(final_mask.clone());
    #[cfg(feature = "strict-invariants")]
    crate::audit::part1_invariants(udg, &masks, &final_mask, schedule.iter().sum());

    Part1Outcome {
        leaders: DominatingSet::from_members(active.to_bools()),
        rounds: schedule.len() as u32,
        active_history: history,
        active_masks: masks,
        rngs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::{is_k_dominating, Semantics};
    use ftclust_graphs::generators;

    #[test]
    fn schedule_ends_at_half_radius() {
        for n in [1usize, 2, 10, 100, 10_000, 1_000_000] {
            for r in [1.0, 2.5] {
                let s = theta_schedule(n, r);
                assert!(!s.is_empty());
                assert!((s.last().unwrap() - 0.5 * r).abs() < 1e-12, "n={n}");
                // Doubling until the cap.
                for w in s.windows(2) {
                    assert!(w[1] >= w[0] - 1e-12);
                    assert!(w[1] <= 2.0 * w[0] + 1e-12);
                }
                assert!(s.iter().all(|&t| t <= 0.5 * r + 1e-12));
            }
        }
    }

    #[test]
    fn id_cap_saturates() {
        assert_eq!(id_cap(2), 16);
        assert_eq!(id_cap(10), 10_000);
        assert_eq!(id_cap(100_000), u64::MAX); // 10²⁰ > u64::MAX
    }

    #[test]
    fn dense_clique_keeps_one_leader() {
        // All nodes within θ₁ of each other: a single election winner
        // survives every round.
        let pts: Vec<_> = (0..50)
            .map(|i| ftclust_geometry::Point::new(1e-6 * i as f64, 0.0))
            .collect();
        let udg = ftclust_graphs::UnitDiskGraph::build(pts, 1.0).unwrap();
        let out = run_part1(&udg, 3, IdMode::FreshPerRound);
        assert_eq!(out.leaders.len(), 1);
    }

    #[test]
    fn isolated_nodes_all_become_leaders() {
        let pts: Vec<_> = (0..6)
            .map(|i| ftclust_geometry::Point::new(5.0 * i as f64, 0.0))
            .collect();
        let udg = ftclust_graphs::UnitDiskGraph::build(pts, 1.0).unwrap();
        let out = run_part1(&udg, 0, IdMode::FreshPerRound);
        assert_eq!(out.leaders.len(), 6);
    }

    #[test]
    fn lemma_5_1_leaders_dominate() {
        for seed in 0..5 {
            let udg = generators::random_udg(500, 9.0, 1.0, 100 + seed);
            let out = run_part1(&udg, seed, IdMode::FreshPerRound);
            assert!(
                is_k_dominating(udg.graph(), &out.leaders, 1, Semantics::Strict),
                "Lemma 5.1 violated at seed {seed}"
            );
        }
    }

    #[test]
    fn sparsification_shrinks_dense_deployments() {
        // 2000 nodes in a 4×4 area (radius 1): the leader density is
        // governed by the area (Lemma 5.5: O(1) per radius-1/2 disk ⇒
        // a few dozen overall), not by n.
        let udg = generators::random_udg_in_square(2000, 4.0, 1.0, 8);
        let out = run_part1(&udg, 1, IdMode::FreshPerRound);
        assert!(
            out.leaders.len() < 200,
            "no sparsification: {} leaders in a 16-unit² area",
            out.leaders.len()
        );
    }

    #[test]
    fn fixed_ids_still_dominate() {
        let udg = generators::random_udg(300, 10.0, 1.0, 12);
        let out = run_part1(&udg, 2, IdMode::FixedAtStart);
        assert!(is_k_dominating(
            udg.graph(),
            &out.leaders,
            1,
            Semantics::Strict
        ));
    }
}
