//! **Algorithm 3** — fault-tolerant clustering in unit disk graphs in
//! `O(log log n)` rounds.
//!
//! Requires nodes embedded in the plane with distance sensing (the
//! [`ftclust_graphs::UnitDiskGraph`] model of Section 5).
//!
//! **Part I** (following Gao et al.'s *Discrete Mobile Centers*): all nodes
//! start *active* with a tiny consideration radius
//! `θ₁ = (log n)^{-1/log ξ}`, `ξ = 3/2` (in units of the communication
//! radius). Each round, every active node draws a fresh random identifier
//! from `[1, n⁴]`, elects the highest identifier among the active nodes
//! within distance `θ` (possibly itself), and exactly the elected nodes
//! stay active; `θ` doubles every round. After `⌈log_ξ log n⌉` rounds
//! (when `θ` reaches `1/2`) the remaining active nodes become **leaders** —
//! a dominating set (Lemma 5.1) with `O(1)` expected leaders per
//! radius-`1/2` disk (Lemma 5.5).
//!
//! **Part II**: leaders repeatedly promote up to `k` of their
//! not-yet-`k`-covered neighbors until every non-leader has at least `k`
//! leader neighbors. The result is a k-fold dominating set with `O(1)`
//! expected approximation ratio (Theorem 5.7).
//!
//! Our `θ` schedule fixes a factor-2 inconsistency in the paper (line 3 of
//! the pseudocode initializes `θ = ½(log n)^{-1/log ξ}` while the analysis
//! uses `θ_i = 2^{i-1}(log n)^{-1/log ξ}`; we use the latter, which makes
//! the final radius exactly `1/2` as the analysis requires), and caps
//! `θ ≤ 1/2` so the ceiling on the round count never pushes the
//! consideration radius beyond the communication radius.
//!
//! # Example
//!
//! ```
//! use ftclust_core::udg::UdgAlgorithm;
//! use ftclust_core::validate::{is_k_dominating, Semantics};
//! use ftclust_graphs::generators;
//!
//! let udg = generators::random_udg(500, 10.0, 1.0, 3);
//! let run = UdgAlgorithm::new(3).seed(1).run(&udg)?;
//! assert!(is_k_dominating(udg.graph(), &run.set, 3, Semantics::Strict));
//! // Part I alone already dominates (k = 1):
//! assert!(is_k_dominating(udg.graph(), &run.leaders, 1, Semantics::Strict));
//! # Ok::<(), ftclust_core::KmdsError>(())
//! ```

mod part1;
mod part2;

pub mod analysis;
pub mod protocol;

pub(crate) use part1::run_part1;
pub use part1::theta_schedule;
pub(crate) use part2::{run_part2, select_promotions, RngSource};

use crate::{DominatingSet, KmdsError};
use ftclust_graphs::UnitDiskGraph;

/// How Part I assigns the random identifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IdMode {
    /// Fresh identifiers every round (the paper's choice — consecutive
    /// rounds are independent, which Lemma 5.5's proof relies on).
    #[default]
    FreshPerRound,
    /// One identifier drawn at the start and kept (the E13 ablation: the
    /// independence argument breaks, and sparsification measurably
    /// degrades on adversarial layouts).
    FixedAtStart,
}

/// How a leader picks which `k` uncovered neighbors to promote in Part II
/// (the paper's line 20 leaves this arbitrary).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PromotionRule {
    /// The `k` lowest-id uncovered neighbors (deterministic; default).
    #[default]
    LowestId,
    /// The `k` least-covered neighbors (ties by id).
    MostDeficient,
    /// A uniform random subset.
    Random,
}

/// Builder/configuration for Algorithm 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdgAlgorithm {
    k: u32,
    seed: u64,
    id_mode: IdMode,
    promotion: PromotionRule,
}

/// Result of Algorithm 3.
#[derive(Debug, Clone, PartialEq)]
pub struct UdgRun {
    /// The final k-fold dominating set (leaders of Part I plus the nodes
    /// promoted in Part II).
    pub set: DominatingSet,
    /// The leaders after Part I (a plain dominating set, Lemma 5.1).
    pub leaders: DominatingSet,
    /// Rounds executed in Part I (`⌈log_ξ log n⌉`).
    pub part1_rounds: u32,
    /// Iterations of the Part II while-loop.
    pub part2_iterations: u32,
    /// Number of active nodes after each Part I round (index 0 = after
    /// round 1) — the double-exponential decay series of Lemma 5.2 /
    /// experiment E7.
    pub active_history: Vec<usize>,
}

impl UdgAlgorithm {
    /// An instance of Algorithm 3 computing a `k`-fold dominating set,
    /// with seed 0 and default (paper-faithful) modes.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: u32) -> Self {
        assert!(k >= 1, "k must be at least 1");
        UdgAlgorithm {
            k,
            seed: 0,
            id_mode: IdMode::default(),
            promotion: PromotionRule::default(),
        }
    }

    /// Sets the random seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the identifier mode (E13 ablation).
    pub fn id_mode(mut self, mode: IdMode) -> Self {
        self.id_mode = mode;
        self
    }

    /// Sets the promotion rule.
    pub fn promotion(mut self, rule: PromotionRule) -> Self {
        self.promotion = rule;
        self
    }

    /// The configured `k`.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Runs the in-memory engine.
    ///
    /// # Errors
    ///
    /// Returns [`KmdsError::IterationLimit`] if Part II fails to make
    /// progress (impossible by Lemma 5.1; checked defensively).
    pub fn run(&self, udg: &UnitDiskGraph) -> Result<UdgRun, KmdsError> {
        let p1 = run_part1(udg, self.seed, self.id_mode);
        let (set, part2_iterations) = run_part2(
            udg.graph(),
            &p1.leaders,
            self.k,
            RngSource::Streams(p1.rngs),
            self.promotion,
        )?;
        Ok(UdgRun {
            set,
            leaders: p1.leaders,
            part1_rounds: p1.rounds,
            part2_iterations,
            active_history: p1.active_history,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::{is_k_dominating, Semantics};
    use ftclust_graphs::generators;

    #[test]
    fn produces_strict_k_domination() {
        for k in [1u32, 2, 4] {
            for seed in [0u64, 9] {
                let udg = generators::random_udg(300, 12.0, 1.0, 40 + seed);
                let run = UdgAlgorithm::new(k).seed(seed).run(&udg).unwrap();
                assert!(
                    is_k_dominating(udg.graph(), &run.set, k, Semantics::Strict),
                    "not {k}-dominating (seed {seed})"
                );
                assert!(run.set.len() >= run.leaders.len());
            }
        }
    }

    #[test]
    fn part1_is_a_dominating_set() {
        let udg = generators::random_udg(400, 10.0, 1.0, 7);
        let run = UdgAlgorithm::new(1).run(&udg).unwrap();
        assert!(is_k_dominating(
            udg.graph(),
            &run.leaders,
            1,
            Semantics::Strict
        ));
    }

    #[test]
    fn rounds_grow_double_logarithmically() {
        let r100 = theta_schedule(100, 1.0).len();
        let r10k = theta_schedule(10_000, 1.0).len();
        let r1m = theta_schedule(1_000_000, 1.0).len();
        assert!(r100 <= r10k && r10k <= r1m);
        // log_{1.5} log₂ 10⁶ ≈ 7.4 → 8 rounds; tiny either way.
        assert!(r1m <= 9, "r1m = {r1m}");
    }

    #[test]
    fn active_counts_decrease() {
        let udg = generators::random_udg(1000, 15.0, 1.0, 2);
        let run = UdgAlgorithm::new(1).run(&udg).unwrap();
        assert_eq!(run.active_history.len() as u32, run.part1_rounds);
        for w in run.active_history.windows(2) {
            assert!(
                w[1] <= w[0],
                "active count increased: {:?}",
                run.active_history
            );
        }
        assert_eq!(*run.active_history.last().unwrap(), run.leaders.len());
    }

    #[test]
    fn deterministic_per_seed() {
        let udg = generators::random_udg(200, 8.0, 1.0, 5);
        let a = UdgAlgorithm::new(2).seed(3).run(&udg).unwrap();
        let b = UdgAlgorithm::new(2).seed(3).run(&udg).unwrap();
        assert_eq!(a, b);
        let c = UdgAlgorithm::new(2).seed(4).run(&udg).unwrap();
        // Different seeds may coincide on tiny graphs but not here.
        assert_ne!(a.set, c.set);
    }

    #[test]
    fn all_rules_and_modes_stay_feasible() {
        let udg = generators::clustered_udg(300, 6, 12.0, 0.8, 1.0, 11);
        for rule in [
            PromotionRule::LowestId,
            PromotionRule::MostDeficient,
            PromotionRule::Random,
        ] {
            for mode in [IdMode::FreshPerRound, IdMode::FixedAtStart] {
                let run = UdgAlgorithm::new(2)
                    .seed(6)
                    .promotion(rule)
                    .id_mode(mode)
                    .run(&udg)
                    .unwrap();
                assert!(
                    is_k_dominating(udg.graph(), &run.set, 2, Semantics::Strict),
                    "infeasible for {rule:?}/{mode:?}"
                );
            }
        }
    }

    #[test]
    fn sparse_graph_promotes_everyone_where_needed() {
        // Nodes far apart: everyone must be a leader.
        let pts = (0..5)
            .map(|i| ftclust_geometry::Point::new(10.0 * i as f64, 0.0))
            .collect();
        let udg = ftclust_graphs::UnitDiskGraph::build(pts, 1.0).unwrap();
        let run = UdgAlgorithm::new(3).run(&udg).unwrap();
        assert_eq!(run.set.len(), 5);
    }

    #[test]
    fn tiny_inputs() {
        let udg =
            ftclust_graphs::UnitDiskGraph::build(vec![ftclust_geometry::Point::new(0.0, 0.0)], 1.0)
                .unwrap();
        let run = UdgAlgorithm::new(1).run(&udg).unwrap();
        assert_eq!(run.set.len(), 1);
        let udg2 = ftclust_graphs::UnitDiskGraph::build(
            vec![
                ftclust_geometry::Point::new(0.0, 0.0),
                ftclust_geometry::Point::new(0.5, 0.0),
            ],
            1.0,
        )
        .unwrap();
        let run = UdgAlgorithm::new(2).run(&udg2).unwrap();
        assert!(is_k_dominating(
            udg2.graph(),
            &run.set,
            2,
            Semantics::Strict
        ));
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn zero_k_panics() {
        let _ = UdgAlgorithm::new(0);
    }
}
