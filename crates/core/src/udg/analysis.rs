//! Geometric analysis of UDG clustering outputs.
//!
//! Lemma 5.5 bounds the *expected number of leaders in any disk of radius
//! `1/2`* by a constant, and Lemma 5.6 extends this to `O(k)` after
//! Part II. These are the quantities experiments E5/E6 measure: this
//! module counts set members per disk over a hexagonal lattice of
//! radius-`r/2` disks covering the deployment area.

use crate::DominatingSet;
use ftclust_geometry::{hex, SpatialGrid};
use ftclust_graphs::UnitDiskGraph;

/// Occupancy statistics of set members per radius-`r/2` lattice disk.
#[derive(Debug, Clone, PartialEq)]
pub struct DiskOccupancy {
    /// Largest member count in any lattice disk.
    pub max: usize,
    /// Mean member count over *non-empty* lattice disks.
    pub mean_nonempty: f64,
    /// Number of lattice disks containing at least one set member.
    pub nonempty_disks: usize,
    /// Number of lattice disks inspected.
    pub total_disks: usize,
}

/// Counts set members per disk of radius `radius/2` on a hexagonal lattice
/// covering the deployment's bounding box (the Lemma 5.5 / 5.6
/// measurement).
///
/// Returns `None` for an empty deployment.
pub fn members_per_half_disk(udg: &UnitDiskGraph, set: &DominatingSet) -> Option<DiskOccupancy> {
    let (lo, hi) = udg.bounding_box()?;
    let r_half = udg.radius() / 2.0;
    let center = lo.midpoint(hi);
    let reach = center.dist(hi) + r_half;
    let centers = hex::lattice_centers_within(center, reach, r_half);
    let member_pos: Vec<_> = set.ids().map(|v| udg.position(v)).collect();
    if member_pos.is_empty() {
        return Some(DiskOccupancy {
            max: 0,
            mean_nonempty: 0.0,
            nonempty_disks: 0,
            total_disks: centers.len(),
        });
    }
    let grid = SpatialGrid::build(&member_pos, r_half);
    let mut max = 0usize;
    let mut nonempty = 0usize;
    let mut occupied_total = 0usize;
    for &c in &centers {
        let count = grid.count_within(c, r_half);
        if count > 0 {
            nonempty += 1;
            occupied_total += count;
            max = max.max(count);
        }
    }
    Some(DiskOccupancy {
        max,
        mean_nonempty: if nonempty == 0 {
            0.0
        } else {
            occupied_total as f64 / nonempty as f64
        },
        nonempty_disks: nonempty,
        total_disks: centers.len(),
    })
}

/// One round of the Lemma 5.2 per-disk census (see [`lemma_5_2_census`]).
#[derive(Debug, Clone, PartialEq)]
pub struct RoundCensus {
    /// 1-based round index.
    pub round: usize,
    /// The round's consideration radius `θ_i`.
    pub theta: f64,
    /// Disks inspected (one per nonempty nearest-lattice-center group
    /// with `m_i ≥ 2`).
    pub active_disks: usize,
    /// Max over disks of `x'_i / (√m_i · ln m_i)` — Lemma 5.2 says this
    /// is bounded by a constant `δ` with high probability.
    pub max_ratio: f64,
    /// Fraction of disks with `x'_i ≤ √m_i · ln m_i` (i.e. `δ = 1`
    /// suffices).
    pub delta1_fraction: f64,
}

/// The **per-disk** measurement of Lemma 5.2: for every round `r_i` and
/// every occupied lattice disk `C_i` of radius `θ_i/2`, compare the number
/// `x'_i` of active nodes surviving the round inside `C_i` against
/// `√m_i · ln m_i`, where `m_i` counts the active nodes in the concentric
/// disk `D_i` of radius `3θ_i/2` (the lemma's statement, verbatim).
///
/// Disks are anchored at the hexagonal-lattice center nearest to each
/// active node; only disks with `m_i ≥ 2` enter the statistics (the lemma
/// concerns populated disks — a singleton trivially survives).
///
/// Runs Part I internally with the given seed.
pub fn lemma_5_2_census(udg: &UnitDiskGraph, seed: u64) -> Vec<RoundCensus> {
    use crate::udg::{run_part1, IdMode};
    if udg.node_count() == 0 {
        return Vec::new();
    }
    let outcome = run_part1(udg, seed, IdMode::FreshPerRound);
    let schedule = crate::udg::theta_schedule(udg.node_count(), udg.radius());
    let mut census = Vec::new();
    for (i, &theta) in schedule.iter().enumerate() {
        let before = &outcome.active_masks[i];
        let after = &outcome.active_masks[i + 1];
        let r_half = theta / 2.0;
        // Positions of the round's active nodes (before / after).
        let before_pos: Vec<_> = udg
            .graph()
            .nodes()
            .filter(|v| before[v.index()])
            .map(|v| udg.position(v))
            .collect();
        let after_pos: Vec<_> = udg
            .graph()
            .nodes()
            .filter(|v| after[v.index()])
            .map(|v| udg.position(v))
            .collect();
        if before_pos.is_empty() {
            census.push(RoundCensus {
                round: i + 1,
                theta,
                active_disks: 0,
                max_ratio: 0.0,
                delta1_fraction: 1.0,
            });
            continue;
        }
        let before_grid = SpatialGrid::build(&before_pos, (3.0 * r_half).max(1e-12));
        let after_grid = SpatialGrid::build(&after_pos, r_half.max(1e-12));
        // Snap each active node to its nearest hexagonal lattice center
        // (row spacing 1.5·r_half, column spacing √3·r_half).
        let sy = 1.5 * r_half;
        let sx = 3f64.sqrt() * r_half;
        let mut centers: std::collections::BTreeSet<(i64, i64)> = Default::default();
        for p in &before_pos {
            let row = (p.y / sy).round() as i64;
            let offset = if row.rem_euclid(2) == 1 {
                sx / 2.0
            } else {
                0.0
            };
            let col = ((p.x - offset) / sx).round() as i64;
            centers.insert((row, col));
        }
        let mut active_disks = 0usize;
        let mut max_ratio = 0.0f64;
        let mut satisfied = 0usize;
        for &(row, col) in &centers {
            let offset = if row.rem_euclid(2) == 1 {
                sx / 2.0
            } else {
                0.0
            };
            let c = ftclust_geometry::Point::new(col as f64 * sx + offset, row as f64 * sy);
            let m = before_grid.count_within(c, 3.0 * r_half);
            if m < 2 {
                continue;
            }
            active_disks += 1;
            let x_after = after_grid.count_within(c, r_half) as f64;
            let budget = (m as f64).sqrt() * (m as f64).ln();
            let ratio = x_after / budget;
            max_ratio = max_ratio.max(ratio);
            if ratio <= 1.0 {
                satisfied += 1;
            }
        }
        census.push(RoundCensus {
            round: i + 1,
            theta,
            active_disks,
            max_ratio,
            delta1_fraction: if active_disks == 0 {
                1.0
            } else {
                satisfied as f64 / active_disks as f64
            },
        });
    }
    census
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::udg::UdgAlgorithm;
    use ftclust_graphs::generators;

    #[test]
    fn census_shows_bounded_per_disk_decay() {
        let udg = generators::random_udg_in_square(4000, 6.0, 1.0, 7);
        let census = lemma_5_2_census(&udg, 3);
        assert!(!census.is_empty());
        for c in &census {
            // Lemma 5.2 with a small constant δ: the survivors per disk
            // never exceed a few multiples of √m·ln m.
            assert!(
                c.max_ratio <= 6.0,
                "round {}: per-disk decay ratio {} too large",
                c.round,
                c.max_ratio
            );
        }
        // In the disk-richest round, δ = 1 already covers most disks
        // (small disks with m = 2, where √m·ln m < 1, legitimately need
        // the lemma's constant δ > 1 — so this is a majority, not a
        // unanimity, check).
        let mid = census
            .iter()
            .max_by_key(|c| c.active_disks)
            .expect("non-empty");
        assert!(mid.active_disks > 10);
        assert!(
            mid.delta1_fraction > 0.6,
            "δ=1 satisfied only {:.2} of disks",
            mid.delta1_fraction
        );
    }

    #[test]
    fn census_on_empty_deployment() {
        let udg = ftclust_graphs::UnitDiskGraph::build(vec![], 1.0).unwrap();
        assert!(lemma_5_2_census(&udg, 0).is_empty());
    }

    #[test]
    fn empty_deployment_has_no_occupancy() {
        let udg = ftclust_graphs::UnitDiskGraph::build(vec![], 1.0).unwrap();
        assert!(members_per_half_disk(&udg, &DominatingSet::empty(0)).is_none());
    }

    #[test]
    fn empty_set_counts_zero() {
        let udg = generators::random_udg(50, 6.0, 1.0, 1);
        let occ = members_per_half_disk(&udg, &DominatingSet::empty(50)).unwrap();
        assert_eq!(occ.max, 0);
        assert_eq!(occ.nonempty_disks, 0);
        assert!(occ.total_disks > 0);
    }

    #[test]
    fn full_set_occupancy_reflects_density() {
        let udg = generators::random_udg_in_square(200, 4.0, 1.0, 2);
        let occ = members_per_half_disk(&udg, &DominatingSet::full(200)).unwrap();
        assert!(occ.max >= 1);
        assert!(occ.mean_nonempty >= 1.0);
        assert!(occ.nonempty_disks <= occ.total_disks);
    }

    #[test]
    fn leaders_are_sparse_per_disk() {
        // Lemma 5.5, measured: Part I leaders per half-disk stay small
        // even on dense deployments.
        let udg = generators::random_udg(1500, 20.0, 1.0, 9);
        let run = UdgAlgorithm::new(1).seed(4).run(&udg).unwrap();
        let occ = members_per_half_disk(&udg, &run.leaders).unwrap();
        assert!(
            occ.max <= 12,
            "Lemma 5.5 suggests O(1) leaders per disk; saw {}",
            occ.max
        );
    }
}
