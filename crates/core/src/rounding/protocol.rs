//! Message-passing implementation of Algorithm 2 on [`ftclust_netsim`].
//!
//! Three rounds:
//!
//! 1. draw `x'_i` with probability `min(1, x_i ln(Δ+1))`, broadcast the
//!    flag (line 3),
//! 2. compute the coverage deficit from the received flags, send `REQ` to
//!    exactly that many non-selected closed neighbors (lines 4–6),
//! 3. nodes receiving a `REQ` join (line 7); everyone halts.
//!
//! Flags cost 1 bit, `REQ`s 1 bit — far below the `O(log n)` budget.
//! Seed-for-seed identical to [`super::round_fractional`].

use super::{select_repair_targets, RepairSelection, RoundingOutcome, RoundingParams};
use crate::{DominatingSet, Instance, KmdsError};
use ftclust_graphs::NodeId;
use ftclust_netsim::exec::{Executor, Phase, Stack};
use ftclust_netsim::transport::TransportConfig;
use ftclust_netsim::{
    ChurnPlan, Context, Control, Envelope, EventLog, Metrics, NodeLogic, Payload, Topology,
};
use rand::Rng;

/// Wire messages of the rounding protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoundingMsg {
    /// "I selected myself" flag (line 3 sends `x'_i`).
    Flag {
        /// The value `x'_i` after the random experiment.
        selected: bool,
    },
    /// A coverage request (line 5).
    Req,
}

impl Payload for RoundingMsg {
    fn bit_size(&self) -> usize {
        1
    }
}

/// Per-node protocol state for Algorithm 2.
#[derive(Debug)]
pub struct RoundingNode {
    k: u32,
    x: f64,
    ln_d1: f64,
    selection: RepairSelection,
    repair: bool,
    /// Final membership `x'_i`.
    pub selected: bool,
    /// Whether the node joined in the random step (vs. by repair).
    pub initial: bool,
}

impl NodeLogic for RoundingNode {
    type Payload = RoundingMsg;

    fn on_round(
        &mut self,
        inbox: &[Envelope<RoundingMsg>],
        ctx: &mut Context<'_, RoundingMsg>,
    ) -> Control {
        match ctx.round() {
            0 => {
                let p = (self.x * self.ln_d1).min(1.0);
                self.selected = ctx.rng().random::<f64>() < p;
                self.initial = self.selected;
                ctx.broadcast(RoundingMsg::Flag {
                    selected: self.selected,
                });
                Control::Continue
            }
            1 => {
                if !self.repair {
                    return Control::Halt;
                }
                let mut covered = u32::from(self.selected);
                let mut zeros: Vec<NodeId> = Vec::new();
                if !self.selected {
                    zeros.push(ctx.me());
                }
                for env in inbox {
                    match env.payload {
                        RoundingMsg::Flag { selected } => {
                            if selected {
                                covered += 1;
                            } else {
                                zeros.push(env.from);
                            }
                        }
                        RoundingMsg::Req => unreachable!("no REQ in round 1"),
                    }
                }
                if covered < self.k {
                    let deficit = (self.k - covered) as usize;
                    for w in select_repair_targets(&zeros, deficit, self.selection, ctx.rng()) {
                        ctx.send(w, RoundingMsg::Req);
                    }
                }
                Control::Continue
            }
            _ => {
                if inbox.iter().any(|e| matches!(e.payload, RoundingMsg::Req)) {
                    self.selected = true;
                }
                Control::Halt
            }
        }
    }
}

/// Result of the rounding protocol: the outcome plus communication metrics.
#[derive(Debug, Clone)]
pub struct RoundingProtocolRun {
    /// The rounded set and pick statistics.
    pub outcome: RoundingOutcome,
    /// Rounds, messages and bits used.
    pub metrics: Metrics,
}

/// Runs **Algorithm 2** through the composable executor stack of
/// [`ftclust_netsim::exec`]: the reliable transport (loss masking), churn
/// and tracing layers selected by `stack` compose freely. This is the
/// canonical driver — [`run_rounding_protocol`] and the historical
/// `_lossy`/`_traced` entry points are thin shims over it.
///
/// When the stack is traced, each of Algorithm 2's (at most three)
/// rounds runs under a `rounding_round(r)` span — flag draw,
/// deficit/request, repair — so a composed Algorithm 1+2 trace
/// attributes the rounding tail separately from the LP phases. Tracing
/// does not perturb the run; when the transport is engaged, the rounded
/// set stays seed-for-seed identical to the lossless run's (asserted
/// against the engine by the `strict-invariants` feature, which also
/// reconciles the log's rollups against the metrics).
///
/// # Errors
///
/// Returns [`KmdsError::Sim`] if the (constant) round budget is exceeded
/// (cannot happen losslessly) or — with the transport engaged — if loss
/// exhausts a retransmit budget.
///
/// # Panics
///
/// Panics if `x.len()` differs from the node count.
pub fn run_rounding_stack(
    inst: &Instance<'_>,
    x: &[f64],
    delta: usize,
    seed: u64,
    params: &RoundingParams,
    stack: Stack,
) -> Result<(RoundingProtocolRun, Option<EventLog>), KmdsError> {
    let g = inst.graph();
    assert_eq!(
        x.len(),
        g.node_count(),
        "fractional solution length mismatch"
    );
    let ln_d1 = ((delta + 1) as f64).ln();
    let _transported = stack.engages_transport();
    // The transport scales its physical ceiling from the exact logical
    // round count (3); the synchronous budget carries slack.
    let budget = if _transported { 3 } else { 8 };
    let run = Executor::new(
        Topology::from_graph(g),
        |v: NodeId| RoundingNode {
            k: inst.demand(v),
            x: x[v.index()],
            ln_d1,
            selection: params.selection,
            repair: params.repair,
            selected: false,
            initial: false,
        },
        seed,
    )
    .stack(stack)
    .phases(vec![Phase::repeat("rounding_round", 1)])
    .run(budget)?;
    let outcome = assemble_outcome(run.logics.iter());
    #[cfg(feature = "strict-invariants")]
    {
        if _transported {
            crate::audit::loss_transparent(
                "Algorithm 2",
                &outcome,
                &super::round_fractional(inst, x, delta, seed, params),
            );
        }
        if let Some(log) = &run.log {
            if let Err(e) = log.reconcile(&run.metrics) {
                unreachable!("trace rollups diverged from Metrics: {e}");
            }
        }
    }
    Ok((
        RoundingProtocolRun {
            outcome,
            metrics: run.metrics,
        },
        run.log,
    ))
}

/// Runs **Algorithm 2** as a message-passing protocol.
///
/// # Errors
///
/// Returns [`KmdsError::Sim`] only if the (constant) round budget is
/// exceeded, which cannot happen.
///
/// # Panics
///
/// Panics if `x.len()` differs from the node count.
pub fn run_rounding_protocol(
    inst: &Instance<'_>,
    x: &[f64],
    delta: usize,
    seed: u64,
    params: &RoundingParams,
) -> Result<RoundingProtocolRun, KmdsError> {
    run_rounding_stack(inst, x, delta, seed, params, Stack::new()).map(|(run, _)| run)
}

/// [`run_rounding_protocol`] with a recorded [`EventLog`].
///
/// # Errors
///
/// As [`run_rounding_protocol`].
///
/// # Panics
///
/// As [`run_rounding_protocol`].
#[deprecated(note = "compose layers with `run_rounding_stack(..., Stack::new().traced())`")]
pub fn run_rounding_protocol_traced(
    // lint: driver-drift — deprecated shim delegating to the executor stack
    inst: &Instance<'_>,
    x: &[f64],
    delta: usize,
    seed: u64,
    params: &RoundingParams,
) -> Result<(RoundingProtocolRun, EventLog), KmdsError> {
    run_rounding_stack(inst, x, delta, seed, params, Stack::new().traced())
        .map(|(run, log)| (run, log.unwrap_or_default()))
}

/// Assembles the [`RoundingOutcome`] from the final per-node states —
/// shared by the lossless and lossy runners.
fn assemble_outcome<'n>(nodes: impl Iterator<Item = &'n RoundingNode>) -> RoundingOutcome {
    let mut members = Vec::new();
    let mut initial_picks = 0;
    for node in nodes {
        members.push(node.selected);
        initial_picks += usize::from(node.initial);
    }
    let set = DominatingSet::from_members(members);
    let repair_picks = set.len() - initial_picks;
    RoundingOutcome {
        set,
        initial_picks,
        repair_picks,
    }
}

/// Runs **Algorithm 2** over **lossy links** via the reliable transport.
///
/// # Errors
///
/// Returns [`KmdsError::Sim`] if loss exhausts a retransmit budget or the
/// physical-round budget is exceeded.
///
/// # Panics
///
/// Panics if `x.len()` differs from the node count.
#[deprecated(
    note = "compose layers with `run_rounding_stack(..., Stack::new().churned(churn).transport(transport))`"
)]
pub fn run_rounding_protocol_lossy(
    // lint: driver-drift — deprecated shim delegating to the executor stack
    inst: &Instance<'_>,
    x: &[f64],
    delta: usize,
    seed: u64,
    params: &RoundingParams,
    churn: ChurnPlan,
    transport: TransportConfig,
) -> Result<RoundingProtocolRun, KmdsError> {
    run_rounding_stack(
        inst,
        x,
        delta,
        seed,
        params,
        Stack::new().churned(churn).transport(transport),
    )
    .map(|(run, _)| run)
}

#[cfg(test)]
#[allow(deprecated)] // the shims stay under test to pin their parity with the stack
mod tests {
    use super::*;
    use crate::fractional::{solve_fractional, FractionalParams};
    use crate::rounding::round_fractional;
    use crate::validate::{is_k_dominating_instance, Semantics};
    use ftclust_graphs::generators;

    #[test]
    fn protocol_equals_engine_for_both_selection_rules() {
        let g = generators::gnp(50, 0.12, 4);
        let inst = Instance::uniform_clamped(&g, 2);
        let frac = solve_fractional(&inst, &FractionalParams::new(2)).unwrap();
        for selection in [RepairSelection::LowestId, RepairSelection::Random] {
            for seed in [0u64, 1, 7, 42] {
                let params = RoundingParams {
                    repair: true,
                    selection,
                };
                let engine = round_fractional(&inst, &frac.x, frac.delta, seed, &params);
                let proto =
                    run_rounding_protocol(&inst, &frac.x, frac.delta, seed, &params).unwrap();
                assert_eq!(engine, proto.outcome, "divergence at seed {seed}");
            }
        }
    }

    #[test]
    fn constant_rounds_and_tiny_messages() {
        let g = generators::gnp(100, 0.08, 2);
        let inst = Instance::uniform_clamped(&g, 2);
        let frac = solve_fractional(&inst, &FractionalParams::new(2)).unwrap();
        let run = run_rounding_protocol(&inst, &frac.x, frac.delta, 1, &RoundingParams::default())
            .unwrap();
        assert!(run.metrics.rounds <= 3);
        assert_eq!(run.metrics.max_message_bits, 1);
        assert!(is_k_dominating_instance(
            &inst,
            &run.outcome.set,
            Semantics::CoverSelf
        ));
    }

    #[test]
    fn lossy_execution_matches_engine() {
        let g = generators::gnp(40, 0.15, 8);
        let inst = Instance::uniform_clamped(&g, 2);
        let frac = solve_fractional(&inst, &FractionalParams::new(2)).unwrap();
        let params = RoundingParams::default();
        for seed in [0u64, 9] {
            let engine = round_fractional(&inst, &frac.x, frac.delta, seed, &params);
            for p in [0.0, 0.05, 0.2] {
                let run = run_rounding_protocol_lossy(
                    &inst,
                    &frac.x,
                    frac.delta,
                    seed,
                    &params,
                    ChurnPlan::none().drop_probability(p),
                    TransportConfig::default(),
                )
                .unwrap();
                assert_eq!(engine, run.outcome, "diverged at seed {seed}, p = {p}");
                if p == 0.0 {
                    assert_eq!(run.metrics.retransmits, 0);
                }
            }
        }
    }

    #[test]
    fn repair_off_halts_after_two_rounds() {
        let g = generators::cycle(10);
        let inst = Instance::uniform(&g, 1).unwrap();
        let run = run_rounding_protocol(
            &inst,
            &[0.0; 10],
            2,
            0,
            &RoundingParams {
                repair: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(run.metrics.rounds <= 2);
        assert_eq!(run.outcome.set.len(), 0);
    }

    #[test]
    fn traced_run_matches_untraced_and_reconciles() {
        use ftclust_netsim::trace::{REGISTERED_SPANS, UNSPANNED};
        let g = generators::gnp(50, 0.12, 4);
        let inst = Instance::uniform_clamped(&g, 2);
        let frac = solve_fractional(&inst, &FractionalParams::new(2)).unwrap();
        let params = RoundingParams::default();
        let base = run_rounding_protocol(&inst, &frac.x, frac.delta, 3, &params).unwrap();
        let (traced, log) =
            run_rounding_protocol_traced(&inst, &frac.x, frac.delta, 3, &params).unwrap();
        assert_eq!(base.outcome, traced.outcome);
        assert_eq!(base.metrics, traced.metrics);
        log.reconcile(&traced.metrics).unwrap();
        let rollups = log.rollups();
        for r in &rollups {
            assert!(
                r.name == UNSPANNED || REGISTERED_SPANS.contains(&r.name),
                "unregistered span {:?}",
                r.name
            );
        }
        assert!(rollups.iter().any(|r| r.name == "rounding_round"));
    }
}
