//! **Algorithm 2** — distributed randomized rounding.
//!
//! Converts a feasible fractional solution `x` of `(PP)` into an integral
//! k-fold dominating set:
//!
//! 1. every node joins independently with probability
//!    `p_i = min(1, x_i · ln(Δ+1))` (line 2),
//! 2. nodes still lacking coverage request exactly their deficit from
//!    non-selected closed neighbors (`REQ`, lines 4–6),
//! 3. requested nodes join (line 7).
//!
//! The repair step makes the output **deterministically feasible** (the
//! zeros to request always exist because `k_i ≤ |N[i]|`), while Theorem 4.6
//! bounds its expected cost: `E[|S|] ≤ ρ·ln(Δ+1)·OPT + O(OPT)` when `x` is
//! `ρ`-approximate.
//!
//! Constant time: 3 rounds as a protocol.
//!
//! # Example
//!
//! ```
//! use ftclust_core::fractional::{solve_fractional, FractionalParams};
//! use ftclust_core::rounding::{round_fractional, RoundingParams};
//! use ftclust_core::validate::{is_k_dominating_instance, Semantics};
//! use ftclust_core::Instance;
//! use ftclust_graphs::generators;
//!
//! let g = generators::gnp(100, 0.08, 2);
//! let inst = Instance::uniform_clamped(&g, 2);
//! let frac = solve_fractional(&inst, &FractionalParams::new(3))?;
//! let out = round_fractional(&inst, &frac.x, frac.delta, 7, &RoundingParams::default());
//! assert!(is_k_dominating_instance(&inst, &out.set, Semantics::CoverSelf));
//! # Ok::<(), ftclust_core::KmdsError>(())
//! ```

pub mod protocol;

use crate::{DominatingSet, Instance};
use ftclust_graphs::NodeId;
use ftclust_netsim::node_rng;
use rand::Rng;

/// How a deficient node picks the neighbors it sends `REQ` to (the paper
/// leaves the choice arbitrary).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RepairSelection {
    /// The non-selected closed neighbors with the lowest ids
    /// (deterministic; the default).
    #[default]
    LowestId,
    /// A uniform random subset of the non-selected closed neighbors.
    Random,
}

/// Parameters of Algorithm 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundingParams {
    /// Whether to run the repair step (lines 4–7). Disabling it is the
    /// E13 ablation: without repair the output is only feasible with
    /// probability `1 − O(1/Δ)` per node.
    pub repair: bool,
    /// The repair-selection rule.
    pub selection: RepairSelection,
}

impl Default for RoundingParams {
    fn default() -> Self {
        RoundingParams {
            repair: true,
            selection: RepairSelection::LowestId,
        }
    }
}

/// Output of Algorithm 2.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundingOutcome {
    /// The integral solution.
    pub set: DominatingSet,
    /// Nodes selected by the random experiment (the paper's `X`).
    pub initial_picks: usize,
    /// Nodes added by the repair step (the paper's `Y`).
    pub repair_picks: usize,
}

/// Runs **Algorithm 2** in memory. `x` must be feasible for `inst` when
/// `params.repair` is off; with repair on, any `x ∈ [0,1]^n` yields a
/// feasible set.
///
/// Randomness comes from per-node streams derived from `seed`
/// ([`ftclust_netsim::node_rng`]), so the in-memory run equals the
/// protocol run ([`protocol::run_rounding_protocol`]) seed-for-seed.
///
/// # Panics
///
/// Panics if `x.len()` differs from the node count.
pub fn round_fractional(
    inst: &Instance<'_>,
    x: &[f64],
    delta: usize,
    seed: u64,
    params: &RoundingParams,
) -> RoundingOutcome {
    let g = inst.graph();
    let n = g.node_count();
    assert_eq!(x.len(), n, "fractional solution length mismatch");
    let ln_d1 = ((delta + 1) as f64).ln();
    // Line 2: independent random picks from each node's private stream.
    let mut rngs: Vec<_> = g.nodes().map(|v| node_rng(seed, v)).collect();
    let mut selected = vec![false; n];
    for i in 0..n {
        let p = (x[i] * ln_d1).min(1.0);
        selected[i] = rngs[i].random::<f64>() < p;
    }
    let initial_picks = selected.iter().filter(|&&b| b).count();
    #[cfg(feature = "strict-invariants")]
    let coverage_before = crate::audit::closed_coverage(inst, &selected);
    let mut requested = vec![false; n];
    if params.repair {
        // Lines 4–6: all deficits are computed against the same snapshot
        // and all REQs are sent simultaneously.
        for v in g.nodes() {
            let i = v.index();
            let covered = g
                .closed_neighbors(v)
                .filter(|w| selected[w.index()])
                .count() as u32;
            let k = inst.demand(v);
            if covered >= k {
                continue;
            }
            let deficit = (k - covered) as usize;
            let zeros: Vec<NodeId> = g
                .closed_neighbors(v)
                .filter(|w| !selected[w.index()])
                .collect();
            let chosen = select_repair_targets(&zeros, deficit, params.selection, &mut rngs[i]);
            for w in chosen {
                requested[w.index()] = true;
            }
        }
    }
    // Line 7.
    let mut repair_picks = 0;
    for i in 0..n {
        if requested[i] && !selected[i] {
            selected[i] = true;
            repair_picks += 1;
        }
    }
    #[cfg(feature = "strict-invariants")]
    crate::audit::rounding_monotone(inst, &coverage_before, &selected, params.repair);
    RoundingOutcome {
        set: DominatingSet::from_members(selected),
        initial_picks,
        repair_picks,
    }
}

/// Picks `deficit` repair targets from `zeros` (sorted-by-id candidates,
/// self included at its id position). Shared by engine and protocol.
pub(crate) fn select_repair_targets(
    zeros: &[NodeId],
    deficit: usize,
    selection: RepairSelection,
    rng: &mut impl Rng,
) -> Vec<NodeId> {
    debug_assert!(
        zeros.len() >= deficit,
        "repair impossible: {} zeros for deficit {deficit} — instance was not validated",
        zeros.len()
    );
    match selection {
        RepairSelection::LowestId => {
            let mut sorted: Vec<NodeId> = zeros.to_vec();
            sorted.sort_unstable();
            sorted.truncate(deficit);
            sorted
        }
        RepairSelection::Random => {
            // Partial Fisher–Yates over a copy, drawing in a fixed order.
            let mut pool: Vec<NodeId> = zeros.to_vec();
            pool.sort_unstable();
            let mut chosen = Vec::with_capacity(deficit);
            for _ in 0..deficit.min(pool.len()) {
                let idx = rng.random_range(0..pool.len());
                chosen.push(pool.swap_remove(idx));
            }
            chosen
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fractional::{solve_fractional, FractionalParams};
    use crate::validate::{is_k_dominating_instance, Semantics};
    use ftclust_graphs::generators;

    fn fractional_for(inst: &Instance<'_>, t: u32) -> (Vec<f64>, usize) {
        let sol = solve_fractional(inst, &FractionalParams::new(t)).unwrap();
        (sol.x, sol.delta)
    }

    #[test]
    fn always_feasible_with_repair() {
        for seed in 0..20 {
            let g = generators::gnp(60, 0.1, seed);
            let inst = Instance::uniform_clamped(&g, 2);
            let (x, delta) = fractional_for(&inst, 2);
            let out = round_fractional(&inst, &x, delta, seed, &RoundingParams::default());
            assert!(
                is_k_dominating_instance(&inst, &out.set, Semantics::CoverSelf),
                "infeasible at seed {seed}"
            );
            assert_eq!(out.set.len(), out.initial_picks + out.repair_picks);
        }
    }

    #[test]
    fn without_repair_sometimes_infeasible_but_smaller() {
        // Low-degree graph with a barely-feasible fractional solution:
        // p_i = 0.34·ln(3) ≈ 0.37, so some node misses coverage with
        // overwhelming probability over 30 nodes. The repair ablation must
        // expose this.
        let g = generators::cycle(30);
        let inst = Instance::uniform(&g, 1).unwrap();
        let x = vec![0.34; 30];
        let no_repair = RoundingParams {
            repair: false,
            ..Default::default()
        };
        let mut any_infeasible = false;
        for seed in 0..30 {
            let out = round_fractional(&inst, &x, 2, seed, &no_repair);
            assert_eq!(out.repair_picks, 0);
            if !is_k_dominating_instance(&inst, &out.set, Semantics::CoverSelf) {
                any_infeasible = true;
            }
            // ... and with repair the same seed is always feasible.
            let repaired = round_fractional(&inst, &x, 2, seed, &RoundingParams::default());
            assert!(is_k_dominating_instance(
                &inst,
                &repaired.set,
                Semantics::CoverSelf
            ));
        }
        assert!(
            any_infeasible,
            "repair-off should occasionally miss coverage"
        );
    }

    #[test]
    fn expected_size_tracks_theorem_4_6() {
        let g = generators::gnp(150, 0.06, 9);
        let inst = Instance::uniform_clamped(&g, 2);
        let (x, delta) = fractional_for(&inst, 3);
        let frac_value: f64 = x.iter().sum();
        let trials = 40;
        let mean: f64 = (0..trials)
            .map(|s| {
                round_fractional(&inst, &x, delta, s, &RoundingParams::default())
                    .set
                    .len() as f64
            })
            .sum::<f64>()
            / trials as f64;
        let ln_d1 = ((delta + 1) as f64).ln();
        // E[X] = ln(Δ+1)·Σx; E[Y] small. Allow wide statistical slack.
        assert!(
            mean <= ln_d1 * frac_value * 1.3 + 5.0,
            "mean {mean} vs ln(Δ+1)·Σx = {}",
            ln_d1 * frac_value
        );
        assert!(
            mean >= 0.3 * ln_d1.min(2.0) * frac_value,
            "mean suspiciously small: {mean}"
        );
    }

    #[test]
    fn deterministic_per_seed_and_selection_rules_differ() {
        let g = generators::gnp(50, 0.1, 1);
        let inst = Instance::uniform_clamped(&g, 2);
        let (x, delta) = fractional_for(&inst, 2);
        let a = round_fractional(&inst, &x, delta, 3, &RoundingParams::default());
        let b = round_fractional(&inst, &x, delta, 3, &RoundingParams::default());
        assert_eq!(a, b);
        let rand_sel = RoundingParams {
            selection: RepairSelection::Random,
            ..Default::default()
        };
        let c = round_fractional(&inst, &x, delta, 3, &rand_sel);
        // Same initial picks (same seed), possibly different repairs.
        assert_eq!(a.initial_picks, c.initial_picks);
        assert!(is_k_dominating_instance(
            &inst,
            &c.set,
            Semantics::CoverSelf
        ));
    }

    #[test]
    fn saturated_fractional_selects_everything() {
        // x ≡ 1 and ln(Δ+1) ≥ 1 → p ≡ 1 → everyone joins.
        let g = generators::complete(6);
        let inst = Instance::uniform(&g, 1).unwrap();
        let x = vec![1.0; 6];
        let out = round_fractional(&inst, &x, 5, 0, &RoundingParams::default());
        assert_eq!(out.set.len(), 6);
        assert_eq!(out.repair_picks, 0);
    }

    #[test]
    fn zero_fractional_is_fully_repaired() {
        // x ≡ 0: nothing picked initially, repair must supply all demands.
        let g = generators::star(6);
        let inst = Instance::uniform_clamped(&g, 2);
        let out = round_fractional(&inst, &[0.0; 6], 5, 0, &RoundingParams::default());
        assert_eq!(out.initial_picks, 0);
        assert!(out.repair_picks > 0);
        assert!(is_k_dominating_instance(
            &inst,
            &out.set,
            Semantics::CoverSelf
        ));
    }

    #[test]
    fn isolated_nodes_self_select() {
        let g = generators::empty(3);
        let inst = Instance::uniform_clamped(&g, 1);
        let out = round_fractional(&inst, &[0.0; 3], 0, 1, &RoundingParams::default());
        assert_eq!(out.set.len(), 3, "isolated nodes must request themselves");
    }
}
