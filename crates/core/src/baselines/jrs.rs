//! A randomized distributed baseline in the spirit of Jia, Rajaraman &
//! Suel.
//!
//! The paper's only prior distributed k-MDS reference [9] achieves an
//! expected `O(log Δ)` approximation in `O(log n log Δ log k)` rounds
//! with a *local randomized greedy* (LRG) scheme. This module implements a
//! faithful-in-spirit variant for comparison (experiments E4/E11):
//!
//! * each round, every unselected node computes its **span** (number of
//!   still-deficient closed neighbors);
//! * nodes whose span is at least half the maximum span within their
//!   2-hop neighborhood become *candidates* (the LRG "locally near-best"
//!   rule, computed with two max-flooding exchanges);
//! * a candidate `u` joins with probability
//!   `min(1, max_{v ∈ N[u], r_v > 0} r_v / s_v)`, where `s_v` counts the
//!   candidates able to cover `v` — so each deficient node receives about
//!   `r_v` new dominators in expectation, mirroring LRG's
//!   density-balanced selection;
//! * if a round selects nobody while demands remain, the lowest-id
//!   candidate is forced in (a deterministic tie-breaker that keeps the
//!   variant live without changing its behaviour on non-degenerate
//!   rounds).
//!
//! Deviations from [9] (documented for honest comparison): we use the
//! closed-neighborhood covering semantics of `(PP)`, a single candidate
//! threshold of 1/2 instead of LRG's scaling classes, and the forced
//! tie-breaker. Round counts are reported as *synchronous rounds* where
//! one LRG iteration costs 5 message exchanges (span, two max-floods,
//! candidacy density, join announcements).

use crate::validate::Semantics;
use crate::{DominatingSet, Instance};
use ftclust_netsim::node_rng;
use rand::Rng;

/// Messages exchanged per LRG iteration (for round accounting).
const EXCHANGES_PER_ITERATION: u64 = 5;

/// Result of the JRS-style baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct JrsOutcome {
    /// The computed k-fold dominating set.
    pub set: DominatingSet,
    /// LRG iterations used.
    pub iterations: u64,
    /// Equivalent synchronous message-passing rounds
    /// (`5 × iterations`).
    pub rounds: u64,
}

/// Runs the JRS-style local randomized greedy baseline. See the
/// [module docs](self) for the exact variant implemented.
///
/// Deterministic given `seed` (per-node random streams).
pub fn jrs_kmds(inst: &Instance<'_>, semantics: Semantics, seed: u64) -> JrsOutcome {
    let g = inst.graph();
    let n = g.node_count();
    let mut residual: Vec<i64> = inst.demands().iter().map(|&k| k as i64).collect();
    let mut in_set = vec![false; n];
    let mut rngs: Vec<_> = g.nodes().map(|v| node_rng(seed, v)).collect();
    let mut iterations = 0u64;

    loop {
        let deficient: Vec<bool> = residual.iter().map(|&r| r > 0).collect();
        if !deficient.iter().any(|&d| d) {
            break;
        }
        iterations += 1;
        // Span of each unselected node.
        let span: Vec<i64> = g
            .nodes()
            .map(|v| {
                if in_set[v.index()] {
                    0
                } else {
                    g.closed_neighbors(v)
                        .filter(|w| deficient[w.index()])
                        .count() as i64
                }
            })
            .collect();
        // Two max-flood exchanges give the 2-hop maximum span.
        let hop1: Vec<i64> = g
            .nodes()
            .map(|v| {
                g.closed_neighbors(v)
                    .map(|w| span[w.index()])
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        let hop2: Vec<i64> = g
            .nodes()
            .map(|v| {
                g.closed_neighbors(v)
                    .map(|w| hop1[w.index()])
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        let candidate: Vec<bool> = (0..n)
            .map(|i| span[i] > 0 && 2 * span[i] >= hop2[i])
            .collect();
        // Candidate supply per deficient node.
        let supply: Vec<i64> = g
            .nodes()
            .map(|v| {
                g.closed_neighbors(v)
                    .filter(|w| candidate[w.index()])
                    .count() as i64
            })
            .collect();
        // Randomized joins.
        let mut joined_any = false;
        let mut joined = vec![false; n];
        for v in g.nodes() {
            let i = v.index();
            if !candidate[i] {
                continue;
            }
            let p = g
                .closed_neighbors(v)
                .filter(|w| deficient[w.index()] && supply[w.index()] > 0)
                .map(|w| residual[w.index()] as f64 / supply[w.index()] as f64)
                .fold(0.0f64, f64::max)
                .min(1.0);
            if rngs[i].random::<f64>() < p {
                joined[i] = true;
                joined_any = true;
            }
        }
        if !joined_any {
            // Force the lowest-id candidate to keep the variant live.
            let Some(forced) = (0..n).find(|&i| candidate[i]) else {
                unreachable!("a deficient node always has a candidate in its closed neighborhood");
            };
            joined[forced] = true;
        }
        for v in g.nodes() {
            let i = v.index();
            if !joined[i] || in_set[i] {
                continue;
            }
            in_set[i] = true;
            for w in g.closed_neighbors(v) {
                if residual[w.index()] > 0 {
                    residual[w.index()] -= 1;
                }
            }
            if semantics == Semantics::Strict {
                residual[i] = 0;
            }
        }
    }
    JrsOutcome {
        set: DominatingSet::from_members(in_set),
        iterations,
        rounds: iterations * EXCHANGES_PER_ITERATION,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::greedy_kmds;
    use crate::validate::is_k_dominating_instance;
    use ftclust_graphs::generators;

    #[test]
    fn feasible_on_random_graphs() {
        for seed in 0..6 {
            let g = generators::gnp(70, 0.12, seed);
            let inst = Instance::uniform_clamped(&g, 2);
            for sem in [Semantics::CoverSelf, Semantics::Strict] {
                let out = jrs_kmds(&inst, sem, seed);
                assert!(
                    is_k_dominating_instance(&inst, &out.set, sem),
                    "seed {seed}"
                );
                assert!(out.iterations >= 1);
                assert_eq!(out.rounds, out.iterations * 5);
            }
        }
    }

    #[test]
    fn iteration_count_is_polylogarithmic_in_practice() {
        let g = generators::gnp(400, 0.03, 7);
        let inst = Instance::uniform_clamped(&g, 2);
        let out = jrs_kmds(&inst, Semantics::CoverSelf, 3);
        assert!(
            out.iterations <= 60,
            "LRG-style convergence too slow: {} iterations",
            out.iterations
        );
    }

    #[test]
    fn quality_is_within_log_factor_of_greedy() {
        let g = generators::gnp(200, 0.06, 11);
        let inst = Instance::uniform_clamped(&g, 2);
        let jrs = jrs_kmds(&inst, Semantics::CoverSelf, 1);
        let greedy = greedy_kmds(&inst, Semantics::CoverSelf);
        let ratio = jrs.set.len() as f64 / greedy.len() as f64;
        assert!(ratio < 4.0, "JRS-style output {ratio}× greedy");
    }

    #[test]
    fn deterministic_per_seed() {
        let g = generators::gnp(60, 0.1, 2);
        let inst = Instance::uniform_clamped(&g, 2);
        assert_eq!(
            jrs_kmds(&inst, Semantics::CoverSelf, 5),
            jrs_kmds(&inst, Semantics::CoverSelf, 5)
        );
    }

    #[test]
    fn zero_demand_is_instant() {
        let g = generators::path(5);
        let inst = Instance::with_demands(&g, vec![0; 5]).unwrap();
        let out = jrs_kmds(&inst, Semantics::CoverSelf, 0);
        assert_eq!(out.iterations, 0);
        assert!(out.set.is_empty());
    }
}
