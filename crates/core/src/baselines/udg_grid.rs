//! Grid-cell clustering heuristic for unit disk graphs.

use crate::DominatingSet;
use ftclust_graphs::{NodeId, UnitDiskGraph};
use std::collections::BTreeMap;

/// A geometric heuristic baseline: partition the plane into square cells
/// of side `r/√2` (so any two nodes in a cell are within distance `r` of
/// each other) and select the `k` lowest-id nodes of every occupied cell
/// (all of them when a cell holds fewer than `k`).
///
/// The result is always a valid k-fold dominating set under
/// [`Semantics::Strict`](crate::validate::Semantics): a non-selected node shares its cell with `k`
/// selected nodes, all of which are its neighbors; cells with fewer than
/// `k` nodes are selected wholesale.
///
/// Quality: `O(k)` per cell with `Θ(1/r²)` cells per unit area — a
/// constant-factor competitor to Algorithm 3 on *uniform* deployments, but
/// without its adaptivity (it pays for every occupied cell even where one
/// cluster head would cover many cells; E11 quantifies the gap).
///
/// # Example
///
/// ```
/// use ftclust_core::baselines::grid_clustering;
/// use ftclust_core::validate::{is_k_dominating, Semantics};
/// use ftclust_graphs::generators;
///
/// let udg = generators::random_udg(300, 8.0, 1.0, 4);
/// let set = grid_clustering(&udg, 2);
/// assert!(is_k_dominating(udg.graph(), &set, 2, Semantics::Strict));
/// ```
pub fn grid_clustering(udg: &UnitDiskGraph, k: u32) -> DominatingSet {
    let n = udg.node_count();
    let cell = udg.radius() / 2f64.sqrt();
    let mut cells: BTreeMap<(i64, i64), Vec<u32>> = BTreeMap::new();
    for (i, p) in udg.positions().iter().enumerate() {
        let key = ((p.x / cell).floor() as i64, (p.y / cell).floor() as i64);
        cells.entry(key).or_default().push(i as u32);
    }
    let mut set = DominatingSet::empty(n);
    for bucket in cells.values_mut() {
        bucket.sort_unstable();
        for &i in bucket.iter().take(k as usize) {
            set.insert(NodeId::new(i));
        }
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::{is_k_dominating, Semantics};
    use ftclust_graphs::generators;

    #[test]
    fn strict_feasible_across_densities_and_k() {
        for (n, deg) in [(100u32, 4.0), (300, 10.0), (500, 20.0)] {
            for k in [1u32, 2, 4] {
                let udg = generators::random_udg(n, deg, 1.0, (n + k) as u64);
                let set = grid_clustering(&udg, k);
                assert!(
                    is_k_dominating(udg.graph(), &set, k, Semantics::Strict),
                    "n={n}, deg={deg}, k={k}"
                );
            }
        }
    }

    #[test]
    fn small_cells_pick_everyone() {
        // Nodes pairwise far apart: every node is its own cell.
        let pts: Vec<_> = (0..5)
            .map(|i| ftclust_geometry::Point::new(3.0 * i as f64, 0.0))
            .collect();
        let udg = ftclust_graphs::UnitDiskGraph::build(pts, 1.0).unwrap();
        assert_eq!(grid_clustering(&udg, 2).len(), 5);
    }

    #[test]
    fn dense_cell_capped_at_k() {
        let pts: Vec<_> = (0..20)
            .map(|i| ftclust_geometry::Point::new(1e-3 * i as f64, 0.0))
            .collect();
        let udg = ftclust_graphs::UnitDiskGraph::build(pts, 1.0).unwrap();
        assert_eq!(grid_clustering(&udg, 3).len(), 3);
    }

    #[test]
    fn deterministic() {
        let udg = generators::random_udg(80, 6.0, 1.0, 2);
        assert_eq!(grid_clustering(&udg, 2), grid_clustering(&udg, 2));
    }
}
