//! Exact optimum via branch and bound, for small instances.

use super::greedy_kmds;
use crate::validate::Semantics;
use crate::{DominatingSet, Instance};
use ftclust_graphs::NodeId;

/// Hard node-count limit of the exact solver.
const MAX_NODES: usize = 40;
/// Search-step budget before giving up.
const MAX_STEPS: u64 = 20_000_000;

/// Computes a **minimum** k-fold dominating set by branch and bound, or
/// `None` if the instance exceeds the solver's budget (more than
/// 40 nodes, or the search does not finish within its step budget).
///
/// Used as the ground-truth denominator for approximation-ratio
/// experiments. Branches on nodes in decreasing-degree order, prunes with
/// the greedy upper bound, the `Σ residual / (Δ+1)` volume bound and a
/// per-node availability check (a node whose remaining closed neighborhood
/// cannot meet its residual demand kills the branch).
///
/// # Example
///
/// ```
/// use ftclust_core::baselines::exact_kmds;
/// use ftclust_core::validate::Semantics;
/// use ftclust_core::Instance;
/// use ftclust_graphs::generators;
///
/// let g = generators::cycle(9);
/// let inst = Instance::uniform(&g, 1)?;
/// let opt = exact_kmds(&inst, Semantics::CoverSelf).unwrap();
/// assert_eq!(opt.len(), 3); // ⌈9/3⌉
/// # Ok::<(), ftclust_core::KmdsError>(())
/// ```
pub fn exact_kmds(inst: &Instance<'_>, semantics: Semantics) -> Option<DominatingSet> {
    let g = inst.graph();
    let n = g.node_count();
    if n > MAX_NODES {
        return None;
    }
    if n == 0 {
        return Some(DominatingSet::empty(0));
    }
    // Branch order: high degree first (covers most demands).
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by_key(|&u| (std::cmp::Reverse(g.degree(NodeId::new(u))), u));

    let mut best = greedy_kmds(inst, semantics);
    let mut residual: Vec<i64> = inst.demands().iter().map(|&k| k as i64).collect();
    // available[v] = |N[v]| minus the neighbors already excluded: an upper
    // bound on how much coverage v can still receive.
    let mut available: Vec<i64> = g.nodes().map(|v| g.degree(v) as i64 + 1).collect();
    let delta1 = (g.max_degree() + 1) as i64;
    let mut chosen: Vec<u32> = Vec::new();
    let mut excluded = vec![false; n];
    let mut steps: u64 = 0;

    struct Ctx<'a, 'b> {
        g: &'a ftclust_graphs::Graph,
        order: &'b [u32],
        semantics: Semantics,
        delta1: i64,
        max_demand: u32,
        steps: &'b mut u64,
    }

    #[allow(clippy::too_many_arguments)]
    fn dfs(
        ctx: &mut Ctx<'_, '_>,
        idx: usize,
        residual: &mut Vec<i64>,
        available: &mut Vec<i64>,
        chosen: &mut Vec<u32>,
        excluded: &mut Vec<bool>,
        best: &mut DominatingSet,
    ) -> bool {
        *ctx.steps += 1;
        if *ctx.steps > MAX_STEPS {
            return false; // budget exhausted
        }
        let total_residual: i64 = residual.iter().filter(|&&r| r > 0).sum();
        if total_residual == 0 {
            if chosen.len() < best.len() {
                *best = DominatingSet::from_ids(
                    ctx.g.node_count(),
                    chosen.iter().map(|&u| NodeId::new(u)),
                );
            }
            return true;
        }
        // Volume bound: every further node supplies ≤ Δ+1 units (one per
        // closed neighbor); under Strict it additionally clears up to
        // `k_max − 1` units of its own residual demand by joining.
        let extra = match ctx.semantics {
            Semantics::CoverSelf => ctx.delta1,
            Semantics::Strict => ctx.delta1 + ctx.max_demand.saturating_sub(1) as i64,
        };
        let lb = chosen.len() as i64 + (total_residual + extra - 1) / extra;
        if lb >= best.len() as i64 {
            return true;
        }
        if idx >= ctx.order.len() {
            return true;
        }
        let u = NodeId::new(ctx.order[idx]);
        // Branch 1: take u.
        {
            let mut touched: Vec<usize> = Vec::new();
            for w in ctx.g.closed_neighbors(u) {
                if residual[w.index()] > 0 {
                    residual[w.index()] -= 1;
                    touched.push(w.index());
                }
            }
            let mut self_cleared = 0i64;
            if ctx.semantics == Semantics::Strict && residual[u.index()] > 0 {
                self_cleared = residual[u.index()];
                residual[u.index()] = 0;
            }
            chosen.push(u.raw());
            let ok = dfs(ctx, idx + 1, residual, available, chosen, excluded, best);
            chosen.pop();
            if ctx.semantics == Semantics::Strict && self_cleared > 0 {
                residual[u.index()] = self_cleared;
            }
            for w in touched {
                residual[w] += 1;
            }
            if !ok {
                return false;
            }
        }
        // Branch 2: exclude u — every closed neighbor loses one potential
        // supplier; if that starves someone, the branch is dead.
        {
            excluded[u.index()] = true;
            let mut feasible = true;
            for w in ctx.g.closed_neighbors(u) {
                available[w.index()] -= 1;
                // Under CoverSelf the demand is unconditional. Under
                // Strict, a node not yet excluded can still satisfy
                // itself by joining, so only excluded nodes prune.
                let binding = match ctx.semantics {
                    Semantics::CoverSelf => true,
                    Semantics::Strict => excluded[w.index()],
                };
                if binding && available[w.index()] < residual[w.index()] {
                    feasible = false;
                }
            }
            let ok = if feasible {
                dfs(ctx, idx + 1, residual, available, chosen, excluded, best)
            } else {
                true
            };
            for w in ctx.g.closed_neighbors(u) {
                available[w.index()] += 1;
            }
            excluded[u.index()] = false;
            if !ok {
                return false;
            }
        }
        true
    }

    let mut ctx = Ctx {
        g,
        order: &order,
        semantics,
        delta1,
        max_demand: inst.max_demand(),
        steps: &mut steps,
    };
    let completed = dfs(
        &mut ctx,
        0,
        &mut residual,
        &mut available,
        &mut chosen,
        &mut excluded,
        &mut best,
    );
    completed.then_some(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::is_k_dominating_instance;
    use ftclust_graphs::generators;

    /// Brute force over all subsets, for n ≤ ~15.
    fn brute_force(inst: &Instance<'_>, semantics: Semantics) -> usize {
        let n = inst.graph().node_count();
        let mut best = n;
        for mask in 0u32..(1 << n) {
            let set = DominatingSet::from_members((0..n).map(|i| mask & (1 << i) != 0).collect());
            if set.len() < best && is_k_dominating_instance(inst, &set, semantics) {
                best = set.len();
            }
        }
        best
    }

    #[test]
    fn matches_brute_force_on_small_graphs() {
        for seed in 0..6 {
            let g = generators::gnp(10, 0.3, seed);
            for k in [1u32, 2] {
                let inst = Instance::uniform_clamped(&g, k);
                for sem in [Semantics::CoverSelf, Semantics::Strict] {
                    let exact = exact_kmds(&inst, sem).unwrap();
                    assert!(is_k_dominating_instance(&inst, &exact, sem));
                    assert_eq!(
                        exact.len(),
                        brute_force(&inst, sem),
                        "seed {seed}, k {k}, {sem:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn known_optima() {
        let g = generators::star(9);
        let inst = Instance::uniform(&g, 1).unwrap();
        assert_eq!(exact_kmds(&inst, Semantics::Strict).unwrap().len(), 1);
        // CoverSelf: center covers everyone, but the center itself needs
        // one more supplier? No — the center covers itself. Still 1.
        assert_eq!(exact_kmds(&inst, Semantics::CoverSelf).unwrap().len(), 1);
        let g = generators::complete(6);
        let inst = Instance::uniform(&g, 3).unwrap();
        assert_eq!(exact_kmds(&inst, Semantics::CoverSelf).unwrap().len(), 3);
        // Strict: 2 suffice? Non-members need 3 neighbors in S → |S| = 3
        // still (members need nothing but non-members see all of S).
        assert_eq!(exact_kmds(&inst, Semantics::Strict).unwrap().len(), 3);
    }

    #[test]
    fn exact_never_beats_feasibility() {
        let g = generators::grid_2d(4, 5);
        let inst = Instance::uniform_clamped(&g, 2);
        let exact = exact_kmds(&inst, Semantics::CoverSelf).unwrap();
        assert!(is_k_dominating_instance(
            &inst,
            &exact,
            Semantics::CoverSelf
        ));
        let greedy = greedy_kmds(&inst, Semantics::CoverSelf);
        assert!(exact.len() <= greedy.len());
    }

    #[test]
    fn too_large_returns_none() {
        let g = generators::gnp(60, 0.1, 1);
        let inst = Instance::uniform_clamped(&g, 1);
        assert!(exact_kmds(&inst, Semantics::CoverSelf).is_none());
    }

    #[test]
    fn empty_graph() {
        let g = generators::empty(0);
        let inst = Instance::uniform(&g, 2).unwrap();
        assert_eq!(exact_kmds(&inst, Semantics::CoverSelf).unwrap().len(), 0);
    }
}
