//! The centralized greedy multi-cover algorithm.

use crate::validate::Semantics;
use crate::{DominatingSet, Instance};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Greedy k-fold dominating set ([20, 21] in the paper): repeatedly add
/// the node that completes the most still-deficient coverage demands,
/// until every demand is met. An `H(Δ+1)`-approximation for the covering
/// semantics.
///
/// * Under [`Semantics::CoverSelf`], selecting `u` supplies one unit of
///   coverage to every closed neighbor.
/// * Under [`Semantics::Strict`], selecting `u` additionally cancels `u`'s
///   own residual demand (nodes in the set need no coverage).
///
/// Ties are broken toward lower node ids; the algorithm is deterministic.
///
/// # Panics
///
/// Panics if the demands cannot be met (impossible for validated
/// [`Instance`]s: every demand satisfies `k_v ≤ |N[v]|`).
///
/// # Example
///
/// ```
/// use ftclust_core::baselines::greedy_kmds;
/// use ftclust_core::validate::{is_k_dominating_instance, Semantics};
/// use ftclust_core::Instance;
/// use ftclust_graphs::generators;
///
/// let g = generators::star(8);
/// let inst = Instance::uniform(&g, 1)?;
/// let set = greedy_kmds(&inst, Semantics::CoverSelf);
/// assert!(is_k_dominating_instance(&inst, &set, Semantics::CoverSelf));
/// assert!(set.len() <= 2); // center + possibly one leaf for the center's own demand
/// # Ok::<(), ftclust_core::KmdsError>(())
/// ```
pub fn greedy_kmds(inst: &Instance<'_>, semantics: Semantics) -> DominatingSet {
    let g = inst.graph();
    let n = g.node_count();
    let mut residual: Vec<i64> = inst.demands().iter().map(|&k| k as i64).collect();
    let mut deficient: i64 = residual.iter().filter(|&&r| r > 0).count() as i64;
    let mut set = DominatingSet::empty(n);

    let score = |u: usize, residual: &[i64]| -> i64 {
        g.closed_neighbors(ftclust_graphs::NodeId::new(u as u32))
            .filter(|w| residual[w.index()] > 0)
            .count() as i64
    };

    // Lazy max-heap of (score, Reverse(id)); scores only decrease, so a
    // popped stale entry is re-pushed with its current score.
    let mut heap: BinaryHeap<(i64, Reverse<usize>)> =
        (0..n).map(|u| (score(u, &residual), Reverse(u))).collect();
    while deficient > 0 {
        let Some((cached, Reverse(u))) = heap.pop() else {
            unreachable!("heap starts with n entries and only shrinks on selection");
        };
        if set.contains(ftclust_graphs::NodeId::new(u as u32)) {
            continue;
        }
        let current = score(u, &residual);
        if current < cached {
            heap.push((current, Reverse(u)));
            continue;
        }
        debug_assert!(current > 0, "no node can help but demands remain");
        let v = ftclust_graphs::NodeId::new(u as u32);
        set.insert(v);
        // Supply coverage.
        for w in g.closed_neighbors(v) {
            if residual[w.index()] > 0 {
                residual[w.index()] -= 1;
                if residual[w.index()] == 0 {
                    deficient -= 1;
                }
            }
        }
        // Strict: the selected node's own remaining demand vanishes.
        if semantics == Semantics::Strict && residual[u] > 0 {
            residual[u] = 0;
            deficient -= 1;
        }
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::is_k_dominating_instance;
    use ftclust_graphs::generators;

    #[test]
    fn feasible_on_random_graphs_both_semantics() {
        for seed in 0..8 {
            let g = generators::gnp(60, 0.12, seed);
            let inst = Instance::uniform_clamped(&g, 2);
            for sem in [Semantics::CoverSelf, Semantics::Strict] {
                let set = greedy_kmds(&inst, sem);
                assert!(
                    is_k_dominating_instance(&inst, &set, sem),
                    "seed {seed}, {sem:?}"
                );
            }
        }
    }

    #[test]
    fn strict_never_larger_than_cover_self() {
        for seed in 0..5 {
            let g = generators::gnp(50, 0.15, seed + 100);
            let inst = Instance::uniform_clamped(&g, 3);
            let strict = greedy_kmds(&inst, Semantics::Strict);
            let cover = greedy_kmds(&inst, Semantics::CoverSelf);
            // Strict is a relaxation, so greedy gets at least as small a
            // certificate in every test we have (not a theorem; greedy is
            // not monotone in general, so allow a tiny slack).
            assert!(strict.len() <= cover.len() + 2);
        }
    }

    #[test]
    fn star_k1_takes_center_first() {
        let g = generators::star(20);
        let inst = Instance::uniform(&g, 1).unwrap();
        let set = greedy_kmds(&inst, Semantics::Strict);
        assert_eq!(set.len(), 1);
        assert!(set.contains(ftclust_graphs::NodeId::new(0)));
    }

    #[test]
    fn cycle_k1_takes_about_a_third() {
        let g = generators::cycle(30);
        let inst = Instance::uniform(&g, 1).unwrap();
        let set = greedy_kmds(&inst, Semantics::CoverSelf);
        assert!(set.len() >= 10);
        assert!(
            set.len() <= 14,
            "greedy should be near n/3, got {}",
            set.len()
        );
    }

    #[test]
    fn k_zero_returns_empty() {
        let g = generators::path(5);
        let inst = Instance::with_demands(&g, vec![0; 5]).unwrap();
        assert!(greedy_kmds(&inst, Semantics::CoverSelf).is_empty());
    }

    #[test]
    fn complete_graph_kfold() {
        let g = generators::complete(7);
        let inst = Instance::uniform(&g, 4).unwrap();
        let set = greedy_kmds(&inst, Semantics::CoverSelf);
        assert_eq!(set.len(), 4);
    }

    #[test]
    fn isolated_nodes_with_demand() {
        let g = generators::empty(3);
        let inst = Instance::uniform_clamped(&g, 1);
        let set = greedy_kmds(&inst, Semantics::CoverSelf);
        assert_eq!(set.len(), 3);
    }
}
