//! Baseline algorithms the paper's results are measured against.
//!
//! * [`greedy_kmds`] — the centralized greedy multi-cover algorithm
//!   (\[20, 21\] in the paper): an `H(Δ+1)`-approximation and the standard
//!   quality yardstick.
//! * [`exact_kmds`] — exact branch-and-bound optimum for small instances
//!   (the denominator of true approximation ratios).
//! * [`jrs_kmds`] — a randomized distributed baseline in the spirit of
//!   Jia, Rajaraman & Suel \[9\], the only prior distributed k-MDS bound.
//! * [`local_heuristic`] — a one-round local rule: every node nominates
//!   its `k` highest-degree closed neighbors.
//! * [`grid_clustering`] — a geometric heuristic for UDGs: pick `k` nodes
//!   per occupied grid cell of diameter `r`.
//! * [`trivial_all`] — every node joins; the upper anchor.

mod exact;
mod greedy;
mod jrs;
mod udg_grid;

pub use exact::exact_kmds;
pub use greedy::greedy_kmds;
pub use jrs::{jrs_kmds, JrsOutcome};
pub use udg_grid::grid_clustering;

use crate::{DominatingSet, Instance};
use ftclust_graphs::NodeId;

/// The trivial k-fold dominating set: every node (valid for every `k`
/// under both semantics).
pub fn trivial_all(inst: &Instance<'_>) -> DominatingSet {
    DominatingSet::full(inst.graph().node_count())
}

/// A one-round local heuristic: every node nominates the `k_v`
/// highest-degree members of its closed neighborhood (ties broken by lowest
/// id); the set is the union of nominations. Always feasible under
/// [`Semantics::CoverSelf`](crate::validate::Semantics) (hence also
/// `Strict`) because each
/// node's nominees lie in its own closed neighborhood.
///
/// This is the kind of cheap heuristic practitioners reach for first; the
/// experiments show how much the LP pipeline and the UDG algorithm save
/// over it.
pub fn local_heuristic(inst: &Instance<'_>) -> DominatingSet {
    let g = inst.graph();
    let mut set = DominatingSet::empty(g.node_count());
    for v in g.nodes() {
        let k = inst.demand(v) as usize;
        if k == 0 {
            continue;
        }
        let mut closed: Vec<NodeId> = g.closed_neighbors(v).collect();
        closed.sort_by_key(|&w| (std::cmp::Reverse(g.degree(w)), w));
        for &w in closed.iter().take(k) {
            set.insert(w);
        }
    }
    set
}

/// Re-exported for convenience: which k-domination semantics a baseline
/// should target.
pub use crate::validate::Semantics as BaselineSemantics;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::{is_k_dominating_instance, Semantics};
    use ftclust_graphs::generators;

    #[test]
    fn trivial_is_always_feasible() {
        let g = generators::gnp(30, 0.2, 1);
        let inst = Instance::uniform_clamped(&g, 3);
        let set = trivial_all(&inst);
        assert!(is_k_dominating_instance(&inst, &set, Semantics::CoverSelf));
        assert_eq!(set.len(), 30);
    }

    #[test]
    fn local_heuristic_is_feasible_and_smaller_than_trivial() {
        for seed in 0..5 {
            let g = generators::gnp(80, 0.15, seed);
            let inst = Instance::uniform_clamped(&g, 2);
            let set = local_heuristic(&inst);
            assert!(is_k_dominating_instance(&inst, &set, Semantics::CoverSelf));
            assert!(set.len() <= 80);
        }
    }

    #[test]
    fn local_heuristic_prefers_hubs() {
        let g = generators::star(10);
        let inst = Instance::uniform_clamped(&g, 1);
        let set = local_heuristic(&inst);
        // Every leaf nominates the center (degree 9); the center nominates
        // itself. Result: just the center.
        assert_eq!(set.len(), 1);
        assert!(set.contains(NodeId::new(0)));
    }

    #[test]
    fn local_heuristic_respects_zero_demand() {
        let g = generators::path(3);
        let inst = Instance::with_demands(&g, vec![0, 0, 0]).unwrap();
        assert_eq!(local_heuristic(&inst).len(), 0);
    }
}
