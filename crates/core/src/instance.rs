use crate::KmdsError;
use ftclust_graphs::{Graph, NodeId};
use ftclust_lp::CoveringLp;

/// A k-fold domination instance: a graph together with per-node coverage
/// demands `k_i`.
///
/// The paper's LP `(PP)` allows the demand to *"vary for different nodes"*;
/// [`Instance::uniform`] is the common `k_i = k` case. Under the `(PP)`
/// semantics a node can be covered at most `δ(v)+1` times (by its closed
/// neighborhood), so feasibility requires `k_v ≤ δ(v)+1` — validated at
/// construction, with [`Instance::uniform_clamped`] as the pragmatic
/// alternative for graphs containing low-degree nodes.
///
/// # Example
///
/// ```
/// use ftclust_core::Instance;
/// use ftclust_graphs::generators;
///
/// let g = generators::cycle(6);
/// let inst = Instance::uniform(&g, 2)?;       // fine: |N[v]| = 3 ≥ 2
/// assert!(Instance::uniform(&g, 4).is_err()); // 4 > 3: infeasible
/// assert_eq!(Instance::uniform_clamped(&g, 4).demand(ftclust_graphs::NodeId::new(0)), 3);
/// assert_eq!(inst.total_demand(), 12);
/// # Ok::<(), ftclust_core::KmdsError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Instance<'a> {
    graph: &'a Graph,
    demands: Vec<u32>,
}

impl<'a> Instance<'a> {
    /// An instance with the same demand `k` at every node.
    ///
    /// # Errors
    ///
    /// Returns [`KmdsError::InfeasibleDemand`] if some node has
    /// `k > δ(v) + 1`.
    pub fn uniform(graph: &'a Graph, k: u32) -> Result<Self, KmdsError> {
        Self::with_demands(graph, vec![k; graph.node_count()])
    }

    /// An instance demanding `min(k, δ(v)+1)` at every node — always
    /// feasible. The clamp only affects nodes whose entire closed
    /// neighborhood must join the dominating set anyway.
    pub fn uniform_clamped(graph: &'a Graph, k: u32) -> Self {
        let demands = graph
            .nodes()
            .map(|v| k.min(graph.degree(v) as u32 + 1))
            .collect();
        Instance { graph, demands }
    }

    /// An instance with per-node demands.
    ///
    /// # Errors
    ///
    /// Returns [`KmdsError::DemandLengthMismatch`] or
    /// [`KmdsError::InfeasibleDemand`].
    pub fn with_demands(graph: &'a Graph, demands: Vec<u32>) -> Result<Self, KmdsError> {
        if demands.len() != graph.node_count() {
            return Err(KmdsError::DemandLengthMismatch {
                demands: demands.len(),
                nodes: graph.node_count(),
            });
        }
        for v in graph.nodes() {
            let closed = graph.degree(v) as u32 + 1;
            let k = demands[v.index()];
            if k > closed {
                return Err(KmdsError::InfeasibleDemand {
                    node: v.raw(),
                    demand: k,
                    closed_neighborhood: closed,
                });
            }
        }
        Ok(Instance { graph, demands })
    }

    /// The underlying graph.
    #[inline]
    pub fn graph(&self) -> &'a Graph {
        self.graph
    }

    /// The demand `k_v` of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn demand(&self, v: NodeId) -> u32 {
        self.demands[v.index()]
    }

    /// All demands, indexed by [`NodeId::index`].
    #[inline]
    pub fn demands(&self) -> &[u32] {
        &self.demands
    }

    /// The largest demand (0 for an empty graph).
    pub fn max_demand(&self) -> u32 {
        self.demands.iter().copied().max().unwrap_or(0)
    }

    /// The sum of all demands.
    pub fn total_demand(&self) -> u64 {
        self.demands.iter().map(|&k| k as u64).sum()
    }

    /// Builds the paper's LP `(PP)`:
    /// `min Σ x_j  s.t.  Σ_{j ∈ N[i]} x_j ≥ k_i,  0 ≤ x ≤ 1`.
    pub fn to_lp(&self) -> CoveringLp {
        let n = self.graph.node_count();
        let mut lp = CoveringLp::new(n);
        for v in self.graph.nodes() {
            let entries = self
                .graph
                .closed_neighbors(v)
                .map(|w| (w.index(), 1.0))
                .collect();
            if lp.add_constraint(entries, self.demand(v) as f64).is_err() {
                unreachable!("constraint indices and demands were validated at construction");
            }
        }
        lp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftclust_graphs::generators;
    use ftclust_lp::solve;

    #[test]
    fn uniform_validates_feasibility() {
        let g = generators::path(3); // endpoints have |N[v]| = 2
        assert!(Instance::uniform(&g, 2).is_ok());
        let err = Instance::uniform(&g, 3).unwrap_err();
        assert_eq!(
            err,
            KmdsError::InfeasibleDemand {
                node: 0,
                demand: 3,
                closed_neighborhood: 2
            }
        );
    }

    #[test]
    fn clamped_lowers_only_where_needed() {
        let g = generators::star(5); // center degree 4, leaves degree 1
        let inst = Instance::uniform_clamped(&g, 3);
        assert_eq!(inst.demand(NodeId::new(0)), 3);
        assert_eq!(inst.demand(NodeId::new(1)), 2);
        assert_eq!(inst.max_demand(), 3);
    }

    #[test]
    fn with_demands_checks_length() {
        let g = generators::path(3);
        assert_eq!(
            Instance::with_demands(&g, vec![1, 1]).unwrap_err(),
            KmdsError::DemandLengthMismatch {
                demands: 2,
                nodes: 3
            }
        );
        let inst = Instance::with_demands(&g, vec![0, 2, 1]).unwrap();
        assert_eq!(inst.total_demand(), 3);
    }

    #[test]
    fn lp_matches_known_optimum() {
        // C_9 with k = 1: LP optimum n/3 = 3.
        let g = generators::cycle(9);
        let inst = Instance::uniform(&g, 1).unwrap();
        let lp = inst.to_lp();
        assert_eq!(lp.num_constraints(), 9);
        let sol = solve(&lp).unwrap();
        assert!((sol.value - 3.0).abs() < 1e-7);
    }

    #[test]
    fn lp_respects_per_node_demands() {
        // K_4 with demands (1, 1, 1, 3): LP optimum is 3.
        let g = generators::complete(4);
        let inst = Instance::with_demands(&g, vec![1, 1, 1, 3]).unwrap();
        let sol = solve(&inst.to_lp()).unwrap();
        assert!((sol.value - 3.0).abs() < 1e-7);
    }

    #[test]
    fn empty_graph_instance() {
        let g = generators::empty(0);
        let inst = Instance::uniform(&g, 5).unwrap(); // vacuously feasible
        assert_eq!(inst.total_demand(), 0);
        assert_eq!(inst.max_demand(), 0);
    }
}
