use ftclust_graphs::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A set of nodes, the output of every clustering algorithm in this crate.
///
/// Stored as a membership bitmap over `0..node_count` for `O(1)` queries
/// and cheap set algebra.
///
/// # Example
///
/// ```
/// use ftclust_core::DominatingSet;
/// use ftclust_graphs::NodeId;
///
/// let mut s = DominatingSet::empty(4);
/// s.insert(NodeId::new(1));
/// s.insert(NodeId::new(3));
/// assert_eq!(s.len(), 2);
/// assert!(s.contains(NodeId::new(3)));
/// assert_eq!(s.ids().collect::<Vec<_>>(), vec![NodeId::new(1), NodeId::new(3)]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DominatingSet {
    members: Vec<bool>,
    len: usize,
}

impl DominatingSet {
    /// The empty set over a universe of `node_count` nodes.
    pub fn empty(node_count: usize) -> Self {
        DominatingSet {
            members: vec![false; node_count],
            len: 0,
        }
    }

    /// The full set (every node selected) — the trivial k-fold dominating
    /// set.
    pub fn full(node_count: usize) -> Self {
        DominatingSet {
            members: vec![true; node_count],
            len: node_count,
        }
    }

    /// Builds a set from a membership bitmap.
    pub fn from_members(members: Vec<bool>) -> Self {
        let len = members.iter().filter(|&&b| b).count();
        DominatingSet { members, len }
    }

    /// Builds a set from node ids (duplicates are fine).
    ///
    /// # Panics
    ///
    /// Panics if any id is `≥ node_count`.
    pub fn from_ids<I: IntoIterator<Item = NodeId>>(node_count: usize, ids: I) -> Self {
        let mut s = DominatingSet::empty(node_count);
        for v in ids {
            s.insert(v);
        }
        s
    }

    /// Number of selected nodes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if no node is selected.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Size of the universe (the graph's node count).
    pub fn universe(&self) -> usize {
        self.members.len()
    }

    /// Returns `true` if `v` is selected.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn contains(&self, v: NodeId) -> bool {
        self.members[v.index()]
    }

    /// Selects `v`; returns `true` if it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn insert(&mut self, v: NodeId) -> bool {
        if self.members[v.index()] {
            false
        } else {
            self.members[v.index()] = true;
            self.len += 1;
            true
        }
    }

    /// Deselects `v`; returns `true` if it was present.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn remove(&mut self, v: NodeId) -> bool {
        if self.members[v.index()] {
            self.members[v.index()] = false;
            self.len -= 1;
            true
        } else {
            false
        }
    }

    /// Iterator over the selected node ids, ascending.
    pub fn ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.members
            .iter()
            .enumerate()
            .filter(|&(_, &b)| b)
            .map(|(i, _)| NodeId::new(i as u32))
    }

    /// The membership bitmap.
    pub fn as_members(&self) -> &[bool] {
        &self.members
    }

    /// The union of two sets over the same universe.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn union(&self, other: &DominatingSet) -> DominatingSet {
        assert_eq!(self.universe(), other.universe(), "universe mismatch");
        DominatingSet::from_members(
            self.members
                .iter()
                .zip(&other.members)
                .map(|(&a, &b)| a || b)
                .collect(),
        )
    }
}

impl FromIterator<NodeId> for DominatingSet {
    /// Collects ids into a set whose universe is just large enough.
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        let ids: Vec<NodeId> = iter.into_iter().collect();
        let universe = ids.iter().map(|v| v.index() + 1).max().unwrap_or(0);
        DominatingSet::from_ids(universe, ids)
    }
}

impl Extend<NodeId> for DominatingSet {
    /// Inserts the ids into the existing universe.
    ///
    /// # Panics
    ///
    /// Panics if any id is out of the universe's range.
    fn extend<I: IntoIterator<Item = NodeId>>(&mut self, iter: I) {
        for v in iter {
            self.insert(v);
        }
    }
}

impl fmt::Display for DominatingSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, v) in self.ids().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "}} ({} of {})", self.len(), self.universe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_len() {
        let mut s = DominatingSet::empty(5);
        assert!(s.is_empty());
        assert!(s.insert(NodeId::new(2)));
        assert!(!s.insert(NodeId::new(2)));
        assert_eq!(s.len(), 1);
        assert!(s.remove(NodeId::new(2)));
        assert!(!s.remove(NodeId::new(2)));
        assert!(s.is_empty());
    }

    #[test]
    fn constructors() {
        assert_eq!(DominatingSet::full(3).len(), 3);
        let s = DominatingSet::from_members(vec![true, false, true]);
        assert_eq!(s.len(), 2);
        let s = DominatingSet::from_ids(4, [NodeId::new(1), NodeId::new(1), NodeId::new(3)]);
        assert_eq!(s.len(), 2);
        let s: DominatingSet = [NodeId::new(0), NodeId::new(4)].into_iter().collect();
        assert_eq!(s.universe(), 5);
        assert_eq!(s.len(), 2);
        let empty: DominatingSet = std::iter::empty().collect();
        assert_eq!(empty.universe(), 0);
    }

    #[test]
    fn extend_inserts_with_dedup() {
        let mut s = DominatingSet::empty(5);
        s.extend([NodeId::new(1), NodeId::new(3), NodeId::new(1)]);
        assert_eq!(s.len(), 2);
        s.extend(std::iter::empty());
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn ids_ascending() {
        let s = DominatingSet::from_ids(6, [NodeId::new(5), NodeId::new(0), NodeId::new(3)]);
        let ids: Vec<u32> = s.ids().map(NodeId::raw).collect();
        assert_eq!(ids, vec![0, 3, 5]);
    }

    #[test]
    fn union_merges() {
        let a = DominatingSet::from_ids(4, [NodeId::new(0)]);
        let b = DominatingSet::from_ids(4, [NodeId::new(0), NodeId::new(2)]);
        let u = a.union(&b);
        assert_eq!(u.len(), 2);
        assert!(u.contains(NodeId::new(2)));
    }

    #[test]
    #[should_panic(expected = "universe mismatch")]
    fn union_requires_same_universe() {
        let _ = DominatingSet::empty(2).union(&DominatingSet::empty(3));
    }

    #[test]
    fn display_lists_members() {
        let s = DominatingSet::from_ids(4, [NodeId::new(1), NodeId::new(2)]);
        assert_eq!(s.to_string(), "{v1, v2} (2 of 4)");
    }
}
