use ftclust_lp::LpError;
use ftclust_netsim::SimError;
use std::error::Error;
use std::fmt;

/// Errors produced by the k-MDS algorithms.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum KmdsError {
    /// A node's coverage demand exceeds its closed neighborhood: under the
    /// LP `(PP)` semantics, node `v` can be covered at most
    /// `δ(v) + 1` times, so `k_v > δ(v) + 1` is infeasible.
    InfeasibleDemand {
        /// The node with the excessive demand.
        node: u32,
        /// The demanded coverage `k_v`.
        demand: u32,
        /// The size of the closed neighborhood `|N[v]| = δ(v) + 1`.
        closed_neighborhood: u32,
    },
    /// A demand vector had the wrong length.
    DemandLengthMismatch {
        /// Demands supplied.
        demands: usize,
        /// Nodes in the graph.
        nodes: usize,
    },
    /// A message-passing execution failed (e.g. round limit).
    Sim(SimError),
    /// An LP solve failed.
    Lp(LpError),
    /// An algorithm exceeded its internal iteration budget — indicates a
    /// bug or an adversarial instance; never observed in the test suite.
    IterationLimit {
        /// Which stage hit the limit.
        stage: &'static str,
        /// The exhausted budget.
        limit: u64,
    },
    /// A failure model was passed to an evaluator that cannot simulate it
    /// (e.g. [`crate::fault::FailureModel::Region`] needs node positions —
    /// use [`crate::fault::regional_survivability`]).
    UnsupportedFailureModel {
        /// Why the model cannot be evaluated, and which API to use instead.
        reason: &'static str,
    },
    /// A Monte-Carlo evaluation was requested with zero trials: the
    /// aggregate statistics (means, minima) would be undefined, and
    /// pre-fix code silently returned `min = +∞` next to `mean = 0`.
    ZeroTrials {
        /// Which evaluator rejected the request.
        what: &'static str,
    },
    /// An approximation ratio was requested against a degenerate lower
    /// bound: an empty dual certificate or a zero-weight optimum yields
    /// `lower_bound ≤ 0`, and pre-fix code silently divided through to
    /// `inf`/`NaN` in reports. Use [`crate::validate::certified_ratio`],
    /// which surfaces this variant instead.
    DegenerateCertificate {
        /// The solution value whose ratio was requested.
        value: f64,
        /// The degenerate certified lower bound (`≤ 0`, or non-finite).
        lower_bound: f64,
    },
}

impl fmt::Display for KmdsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KmdsError::InfeasibleDemand { node, demand, closed_neighborhood } => write!(
                f,
                "node v{node} demands coverage {demand} but has closed neighborhood of size {closed_neighborhood}"
            ),
            KmdsError::DemandLengthMismatch { demands, nodes } => {
                write!(f, "got {demands} demands for {nodes} nodes")
            }
            KmdsError::Sim(e) => write!(f, "simulation failed: {e}"),
            KmdsError::Lp(e) => write!(f, "lp solve failed: {e}"),
            KmdsError::IterationLimit { stage, limit } => {
                write!(f, "{stage} exceeded its iteration budget of {limit}")
            }
            KmdsError::UnsupportedFailureModel { reason } => {
                write!(f, "unsupported failure model: {reason}")
            }
            KmdsError::ZeroTrials { what } => {
                write!(f, "{what} needs at least one trial to aggregate")
            }
            KmdsError::DegenerateCertificate { value, lower_bound } => write!(
                f,
                "cannot certify a ratio for value {value} against degenerate lower bound {lower_bound}"
            ),
        }
    }
}

impl Error for KmdsError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            KmdsError::Sim(e) => Some(e),
            KmdsError::Lp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for KmdsError {
    fn from(e: SimError) -> Self {
        KmdsError::Sim(e)
    }
}

impl From<LpError> for KmdsError {
    fn from(e: LpError) -> Self {
        KmdsError::Lp(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = KmdsError::InfeasibleDemand {
            node: 3,
            demand: 5,
            closed_neighborhood: 2,
        };
        assert!(e.to_string().contains("v3"));
        assert!(e.source().is_none());
        let e = KmdsError::from(SimError::RoundLimitExceeded {
            limit: 1,
            round: 1,
            still_running: 1,
            in_flight: 0,
        });
        assert!(e.source().is_some());
        let e = KmdsError::from(LpError::Infeasible);
        assert!(e.to_string().contains("lp"));
        let e = KmdsError::ZeroTrials {
            what: "survivability",
        };
        assert!(e.to_string().contains("at least one trial"));
        let e = KmdsError::DegenerateCertificate {
            value: 4.0,
            lower_bound: 0.0,
        };
        assert!(e.to_string().contains("degenerate lower bound"));
        assert!(e.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<KmdsError>();
    }
}
