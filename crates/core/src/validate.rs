//! Validation of k-fold domination.
//!
//! The paper uses two subtly different notions, both supported here:
//!
//! * [`Semantics::Strict`] — the Section 1 definition: *"each node
//!   `v ∈ V \ S` has at least `k` dominators in `S` in its neighborhood"*.
//!   Nodes inside `S` need no coverage. This is what the UDG algorithm
//!   (Algorithm 3) guarantees.
//! * [`Semantics::CoverSelf`] — the LP `(PP)` semantics: *every* node must
//!   have `Σ_{j ∈ N[v]} x_j ≥ k_v`, counting itself if selected. This is
//!   what the LP pipeline (Algorithms 1 + 2) guarantees. `CoverSelf`
//!   implies `Strict` for equal demands.

use crate::{DominatingSet, Instance, KmdsError};
use ftclust_graphs::{Graph, NodeId};

/// Which k-domination definition to check. See the [module docs](self).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Semantics {
    /// Section 1: only nodes outside the set need `k` dominators among
    /// their neighbors.
    Strict,
    /// LP `(PP)`: every node needs `k_v` selected nodes in its closed
    /// neighborhood (itself included if selected).
    CoverSelf,
}

/// Number of selected nodes in the closed neighborhood `N[v]` of every
/// node.
///
/// # Panics
///
/// Panics if the set's universe does not match the graph.
pub fn coverage(graph: &Graph, set: &DominatingSet) -> Vec<u32> {
    assert_eq!(set.universe(), graph.node_count(), "set universe mismatch");
    graph
        .nodes()
        .map(|v| {
            graph
                .closed_neighbors(v)
                .filter(|&w| set.contains(w))
                .count() as u32
        })
        .collect()
}

/// Checks whether `set` is a k-fold dominating set of `graph` with uniform
/// demand `k`, under the given semantics.
///
/// # Example
///
/// ```
/// use ftclust_core::validate::{is_k_dominating, Semantics};
/// use ftclust_core::DominatingSet;
/// use ftclust_graphs::{generators, NodeId};
///
/// let g = generators::star(4);
/// let center = DominatingSet::from_ids(4, [NodeId::new(0)]);
/// assert!(is_k_dominating(&g, &center, 1, Semantics::Strict));
/// assert!(is_k_dominating(&g, &center, 1, Semantics::CoverSelf));
/// assert!(!is_k_dominating(&g, &center, 2, Semantics::Strict));
/// ```
pub fn is_k_dominating(graph: &Graph, set: &DominatingSet, k: u32, semantics: Semantics) -> bool {
    let cov = coverage(graph, set);
    graph.nodes().all(|v| satisfied(set, &cov, v, k, semantics))
}

/// Checks an [`Instance`] (per-node demands) against a set.
pub fn is_k_dominating_instance(
    inst: &Instance<'_>,
    set: &DominatingSet,
    semantics: Semantics,
) -> bool {
    let cov = coverage(inst.graph(), set);
    inst.graph()
        .nodes()
        .all(|v| satisfied(set, &cov, v, inst.demand(v), semantics))
}

/// The nodes whose demand is violated (empty iff the set is valid).
pub fn violations(inst: &Instance<'_>, set: &DominatingSet, semantics: Semantics) -> Vec<NodeId> {
    let cov = coverage(inst.graph(), set);
    inst.graph()
        .nodes()
        .filter(|&v| !satisfied(set, &cov, v, inst.demand(v), semantics))
        .collect()
}

/// Fraction of non-set nodes that have at least `k` set members among
/// their neighbors (1.0 when every node is in the set). The health metric
/// for eroding clusterings — e.g. under mobility, where a set computed
/// earlier slowly stops dominating.
///
/// # Panics
///
/// Panics if the set universe does not match the graph.
pub fn covered_fraction(graph: &Graph, set: &DominatingSet, k: u32) -> f64 {
    assert_eq!(set.universe(), graph.node_count(), "set universe mismatch");
    let mut clients = 0usize;
    let mut covered = 0usize;
    for v in graph.nodes() {
        if set.contains(v) {
            continue;
        }
        clients += 1;
        let heads = graph
            .neighbors(v)
            .iter()
            .filter(|&&w| set.contains(w))
            .count() as u32;
        if heads >= k {
            covered += 1;
        }
    }
    if clients == 0 {
        1.0
    } else {
        covered as f64 / clients as f64
    }
}

/// The certified approximation ratio `value / lower_bound`, guarded
/// against degenerate certificates.
///
/// A dual certificate assembled from an empty solution, or an instance
/// whose optimum has zero weight (all demands zero), yields
/// `lower_bound ≤ 0`; dividing through would put `inf`/`NaN` in
/// reports, which is exactly the bug this guard retires. Such inputs —
/// as well as non-finite or negative values — surface a typed
/// [`KmdsError::DegenerateCertificate`] instead.
///
/// # Errors
///
/// [`KmdsError::DegenerateCertificate`] when `lower_bound ≤ 0`, or when
/// either argument is non-finite, or when `value < 0`.
///
/// # Example
///
/// ```
/// use ftclust_core::validate::certified_ratio;
///
/// assert_eq!(certified_ratio(6.0, 3.0)?, 2.0);
/// assert!(certified_ratio(6.0, 0.0).is_err());
/// # Ok::<(), ftclust_core::KmdsError>(())
/// ```
pub fn certified_ratio(value: f64, lower_bound: f64) -> Result<f64, KmdsError> {
    if !value.is_finite() || !lower_bound.is_finite() || value < 0.0 || lower_bound <= 0.0 {
        return Err(KmdsError::DegenerateCertificate { value, lower_bound });
    }
    Ok(value / lower_bound)
}

fn satisfied(set: &DominatingSet, cov: &[u32], v: NodeId, k: u32, semantics: Semantics) -> bool {
    match semantics {
        Semantics::CoverSelf => cov[v.index()] >= k,
        Semantics::Strict => {
            if set.contains(v) {
                true
            } else {
                // v ∉ S, so N[v] ∩ S = N(v) ∩ S.
                cov[v.index()] >= k
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftclust_graphs::generators;

    #[test]
    fn coverage_counts_closed_neighborhood() {
        let g = generators::path(3);
        let s = DominatingSet::from_ids(3, [NodeId::new(1)]);
        assert_eq!(coverage(&g, &s), vec![1, 1, 1]);
        let s = DominatingSet::from_ids(3, [NodeId::new(0), NodeId::new(1)]);
        assert_eq!(coverage(&g, &s), vec![2, 2, 1]);
    }

    #[test]
    fn strict_ignores_set_members() {
        // Path 0-1-2: S = {0, 2}. Node 1 has 2 dominators; nodes 0 and 2
        // are in S so strict demands nothing of them, but CoverSelf sees
        // coverage 1 each.
        let g = generators::path(3);
        let s = DominatingSet::from_ids(3, [NodeId::new(0), NodeId::new(2)]);
        assert!(is_k_dominating(&g, &s, 2, Semantics::Strict));
        assert!(!is_k_dominating(&g, &s, 2, Semantics::CoverSelf));
    }

    #[test]
    fn cover_self_implies_strict() {
        let g = generators::gnp(40, 0.2, 3);
        let inst = Instance::uniform_clamped(&g, 2);
        // The full set satisfies CoverSelf wherever feasible.
        let full = DominatingSet::full(40);
        if is_k_dominating_instance(&inst, &full, Semantics::CoverSelf) {
            assert!(is_k_dominating_instance(&inst, &full, Semantics::Strict));
        }
    }

    #[test]
    fn violations_lists_uncovered_nodes() {
        let g = generators::path(4);
        let inst = Instance::uniform(&g, 1).unwrap();
        let s = DominatingSet::from_ids(4, [NodeId::new(0)]);
        // Coverage: v0:1 v1:1 v2:0 v3:0. Strict: v0 in S ok, v1 ok, v2 and
        // v3 violated.
        assert_eq!(
            violations(&inst, &s, Semantics::Strict),
            vec![NodeId::new(2), NodeId::new(3)]
        );
        assert!(violations(&inst, &DominatingSet::full(4), Semantics::Strict).is_empty());
    }

    #[test]
    fn covered_fraction_counts_clients() {
        let g = generators::path(4);
        // S = {1}: clients 0, 2, 3; nodes 0 and 2 covered, 3 not.
        let s = DominatingSet::from_ids(4, [NodeId::new(1)]);
        assert!((covered_fraction(&g, &s, 1) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(covered_fraction(&g, &DominatingSet::full(4), 5), 1.0);
        assert_eq!(covered_fraction(&g, &DominatingSet::empty(4), 1), 0.0);
    }

    #[test]
    fn certified_ratio_divides_sound_certificates() {
        assert_eq!(certified_ratio(6.0, 2.0).unwrap(), 3.0);
        assert_eq!(certified_ratio(0.0, 1.5).unwrap(), 0.0);
    }

    /// Regression: an **empty dual certificate** (zero nodes, so the dual
    /// sum is empty and the assembled lower bound is 0) must surface a
    /// typed error, not the `inf` that `|S| / 0.0` used to print.
    #[test]
    fn certified_ratio_rejects_empty_dual_certificate() {
        use crate::fractional::{solve_fractional, FractionalParams};
        let g = generators::empty(0);
        let inst = Instance::uniform_clamped(&g, 2);
        let sol = solve_fractional(&inst, &FractionalParams::new(2)).unwrap();
        assert_eq!(sol.lower_bound, 0.0, "empty certificate has no weight");
        let err = certified_ratio(0.0, sol.lower_bound).unwrap_err();
        assert!(matches!(err, KmdsError::DegenerateCertificate { .. }));
    }

    /// Regression: a **zero-weight optimum** (all demands 0, so the LP
    /// optimum and its dual bound are both 0) must surface a typed error,
    /// not the `NaN` that `0.0 / 0.0` used to print.
    #[test]
    fn certified_ratio_rejects_zero_weight_optimum() {
        use crate::fractional::{solve_fractional, FractionalParams};
        let g = generators::path(5);
        let inst = Instance::uniform_clamped(&g, 0);
        let sol = solve_fractional(&inst, &FractionalParams::new(2)).unwrap();
        assert_eq!(sol.lower_bound, 0.0, "zero demands admit the empty set");
        let err = certified_ratio(sol.value, sol.lower_bound).unwrap_err();
        assert!(matches!(
            err,
            KmdsError::DegenerateCertificate { lower_bound, .. } if lower_bound == 0.0
        ));
    }

    #[test]
    fn certified_ratio_rejects_nonfinite_inputs() {
        assert!(certified_ratio(f64::INFINITY, 1.0).is_err());
        assert!(certified_ratio(1.0, f64::NAN).is_err());
        assert!(certified_ratio(-1.0, 1.0).is_err());
        assert!(certified_ratio(1.0, -2.0).is_err());
    }

    #[test]
    fn empty_graph_is_vacuously_dominated() {
        let g = generators::empty(0);
        let s = DominatingSet::empty(0);
        assert!(is_k_dominating(&g, &s, 3, Semantics::Strict));
        assert!(is_k_dominating(&g, &s, 3, Semantics::CoverSelf));
    }

    #[test]
    fn isolated_node_must_be_in_set() {
        let g = generators::empty(1);
        assert!(!is_k_dominating(
            &g,
            &DominatingSet::empty(1),
            1,
            Semantics::Strict
        ));
        assert!(is_k_dominating(
            &g,
            &DominatingSet::full(1),
            1,
            Semantics::Strict
        ));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// An arbitrary simple graph together with an arbitrary subset of
        /// its nodes.
        fn graph_and_set() -> impl Strategy<Value = (Graph, DominatingSet)> {
            (
                1u32..32,
                proptest::collection::vec((0u32..32, 0u32..32), 0..140),
                proptest::collection::vec(0u32..2, 32usize),
            )
                .prop_map(|(n, edges, bits)| {
                    let mut b = ftclust_graphs::GraphBuilder::new(n);
                    for (u, v) in edges {
                        if u != v && u < n && v < n {
                            let _ = b.add_edge(u, v); // duplicates rejected, fine
                        }
                    }
                    let members = (0..n as usize).map(|i| bits[i] == 1).collect();
                    (b.build(), DominatingSet::from_members(members))
                })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// `violations` is the *complete* explanation of infeasibility:
            /// it is empty exactly when the domination predicate holds,
            /// under both semantics, for per-node and uniform demands.
            #[test]
            fn violations_empty_iff_dominating(gs in graph_and_set(), k in 1u32..4) {
                let (g, set) = gs;
                let inst = Instance::uniform_clamped(&g, k);
                for sem in [Semantics::Strict, Semantics::CoverSelf] {
                    prop_assert_eq!(
                        violations(&inst, &set, sem).is_empty(),
                        is_k_dominating_instance(&inst, &set, sem)
                    );
                }
                // Where the uniform demand is admissible everywhere, the
                // instance check coincides with the plain-graph check.
                if let Ok(uniform) = Instance::uniform(&g, k) {
                    for sem in [Semantics::Strict, Semantics::CoverSelf] {
                        prop_assert_eq!(
                            violations(&uniform, &set, sem).is_empty(),
                            is_k_dominating(&g, &set, k, sem)
                        );
                    }
                }
            }

            /// `covered_fraction` lies in `[0, 1]`, agrees with the ratio
            /// recomputed from `coverage` counts, and saturates at 1
            /// exactly when the set strictly k-dominates.
            #[test]
            fn covered_fraction_agrees_with_coverage(gs in graph_and_set(), k in 1u32..4) {
                let (g, set) = gs;
                let cf = covered_fraction(&g, &set, k);
                prop_assert!((0.0..=1.0).contains(&cf), "fraction {} out of range", cf);
                let cov = coverage(&g, &set);
                let clients = g.nodes().filter(|&v| !set.contains(v)).count();
                let covered = g
                    .nodes()
                    .filter(|&v| !set.contains(v) && cov[v.index()] >= k)
                    .count();
                let expected =
                    if clients == 0 { 1.0 } else { covered as f64 / clients as f64 };
                prop_assert!((cf - expected).abs() < 1e-15, "{} vs {}", cf, expected);
                // Saturation ⟺ strict domination (set members are exempt,
                // and for v ∉ S closed and open coverage coincide).
                prop_assert_eq!(
                    covered == clients,
                    is_k_dominating(&g, &set, k, Semantics::Strict)
                );
            }
        }
    }
}
