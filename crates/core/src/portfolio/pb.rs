//! Penso–Barbosa-style distributed k-dominating sets.
//!
//! After L. D. Penso and V. C. Barbosa, *A distributed algorithm to
//! find k-dominating sets* (Discrete Applied Mathematics, 2004). Their
//! algorithm elects rulers of growing clusters in `O(log* n)`-flavored
//! sweeps; this rendition keeps its defining trait — **membership is
//! decided by a coverage-oblivious local election**, here the
//! hashed-id minimum among candidates — on the shared cover-growth
//! skeleton of [`super`] (3-round iterations: status, candidacy,
//! election), so it composes with the executor stack and is metered
//! under the same CONGEST accounting as the paper's algorithms. The
//! generalization to per-node demands `k_v` (and to the `CoverSelf`
//! semantics, so LP dual certificates bound it) is ours.
//!
//! Expected behavior on the leaderboard: wide independent layers join
//! per iteration and candidacies are 1-bit beacons, so it posts the
//! lowest distributed message volume — but since elections ignore
//! coverage gain, the sets are measurably larger than the span-greedy
//! [`super::dkm`]'s, at comparable round counts.

use crate::{Instance, KmdsError};
use ftclust_netsim::exec::Stack;
use ftclust_netsim::EventLog;

use super::cover::{run_cover_stack, Election};
use super::PortfolioRun;

/// Runs the Penso–Barbosa-style protocol through the composable
/// executor stack: transport (loss masking), churn, tracing and
/// adversarial layers compose freely, exactly as for the paper's
/// algorithms. Traced runs attribute every round to the repeating
/// `pb_iter` span.
///
/// # Errors
///
/// Returns [`KmdsError::Sim`] if the round budget is exceeded (cannot
/// happen for well-formed instances), or — with the transport engaged —
/// wrapping [`ftclust_netsim::SimError::DeliveryFailed`] if loss
/// exceeds a retransmit budget.
pub fn run_pb_stack(
    inst: &Instance<'_>,
    stack: Stack,
) -> Result<(PortfolioRun, Option<EventLog>), KmdsError> {
    run_cover_stack(
        inst,
        Election::LayeredId,
        "pb_iter",
        "Penso–Barbosa layered growth",
        stack,
    )
}

/// [`run_pb_stack`] on the empty stack: the plain synchronous run.
///
/// # Errors
///
/// As [`run_pb_stack`].
///
/// # Example
///
/// ```
/// use ftclust_core::portfolio::run_pb_protocol;
/// use ftclust_core::validate::{is_k_dominating_instance, Semantics};
/// use ftclust_core::Instance;
/// use ftclust_graphs::generators;
///
/// let g = generators::gnp(40, 0.15, 7);
/// let inst = Instance::uniform_clamped(&g, 2);
/// let run = run_pb_protocol(&inst)?;
/// assert!(is_k_dominating_instance(&inst, &run.set, Semantics::CoverSelf));
/// # Ok::<(), ftclust_core::KmdsError>(())
/// ```
pub fn run_pb_protocol(inst: &Instance<'_>) -> Result<PortfolioRun, KmdsError> {
    run_pb_stack(inst, Stack::new()).map(|(run, _)| run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::{is_k_dominating_instance, Semantics};
    use ftclust_graphs::generators;
    use ftclust_netsim::transport::TransportConfig;
    use ftclust_netsim::ChurnPlan;

    #[test]
    fn produces_valid_cover_self_sets() {
        for (g, k) in [
            (generators::cycle(12), 2u32),
            (generators::gnp(60, 0.12, 3), 2),
            (generators::grid_2d(8, 7), 3),
            (generators::star(9), 1),
            (generators::empty(5), 1),
        ] {
            let inst = Instance::uniform_clamped(&g, k);
            let run = run_pb_protocol(&inst).unwrap();
            assert!(
                is_k_dominating_instance(&inst, &run.set, Semantics::CoverSelf),
                "invalid set at k={k}"
            );
            assert!(run.logical_rounds <= 3 * (g.node_count() as u64 + 2));
        }
    }

    #[test]
    fn isolated_nodes_join_themselves() {
        let g = generators::empty(4);
        let inst = Instance::uniform_clamped(&g, 1);
        let run = run_pb_protocol(&inst).unwrap();
        assert_eq!(run.set.len(), 4);
        assert_eq!(run.metrics.messages, 0);
    }

    #[test]
    fn zero_demand_elects_nobody() {
        let g = generators::path(6);
        let inst = Instance::uniform_clamped(&g, 0);
        let run = run_pb_protocol(&inst).unwrap();
        assert_eq!(run.set.len(), 0);
    }

    #[test]
    fn hashed_election_beats_sequential_ids_on_grids() {
        // Row-major grid ids are the adversarial case for raw-id
        // elections (Θ(n) sequential joins); the hashed priority keeps
        // the iteration count well below n/3.
        let g = generators::grid_2d(12, 12);
        let inst = Instance::uniform_clamped(&g, 1);
        let run = run_pb_protocol(&inst).unwrap();
        assert!(
            run.logical_rounds < g.node_count() as u64,
            "degenerate sequential election: {} rounds",
            run.logical_rounds
        );
    }

    #[test]
    fn lossy_transport_is_transparent() {
        let g = generators::gnp(40, 0.15, 11);
        let inst = Instance::uniform_clamped(&g, 2);
        let (lossless, _) = run_pb_stack(&inst, Stack::new()).unwrap();
        for p in [0.05, 0.2] {
            let (lossy, _) = run_pb_stack(
                &inst,
                Stack::new()
                    .churned(ChurnPlan::none().drop_probability(p))
                    .transport(TransportConfig::default()),
            )
            .unwrap();
            assert_eq!(lossy.set, lossless.set, "loss changed the set at p={p}");
            assert!(lossy.metrics.retransmits > 0, "no loss exercised at p={p}");
        }
    }
}
