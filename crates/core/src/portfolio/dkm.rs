//! Deurer–Kuhn–Maus-style deterministic span-greedy approximation.
//!
//! After J. Deurer, F. Kuhn and Y. Maus, *Deterministic distributed
//! dominating set approximation in the CONGEST model* (PODC 2019).
//! Their algorithm rounds the greedy's "cover the most uncovered
//! elements" rule into CONGEST via ruling sets over high-span
//! candidates; this rendition keeps that defining trait — **local span
//! maxima join**, i.e. a candidate wins only if no neighboring
//! candidate covers more still-needy nodes — on the shared
//! cover-growth skeleton of [`super`] (3-round iterations: status,
//! candidacy, election), with a hashed-id tie-break for symmetry
//! breaking. Spans are recomputed every iteration from fresh residuals,
//! so the selection tracks the sequential greedy closely; the k-fold
//! per-node-demand generalization (and the `CoverSelf` semantics, so
//! LP dual certificates bound it) is ours. We trade their `poly log n`
//! round guarantee for simplicity — the span chains make the
//! worst-case round count linear, which E17 meters honestly.
//!
//! Expected behavior on the leaderboard: sets close to the centralized
//! greedy's (and measurably smaller than [`super::pb`]'s), at the cost
//! of wider candidacy bids — span values instead of 1-bit beacons.

use crate::{Instance, KmdsError};
use ftclust_netsim::exec::Stack;
use ftclust_netsim::EventLog;

use super::cover::{run_cover_stack, Election};
use super::PortfolioRun;

/// Runs the Deurer–Kuhn–Maus-style protocol through the composable
/// executor stack: transport (loss masking), churn, tracing and
/// adversarial layers compose freely, exactly as for the paper's
/// algorithms. Traced runs attribute every round to the repeating
/// `dkm_iter` span.
///
/// # Errors
///
/// Returns [`KmdsError::Sim`] if the round budget is exceeded (cannot
/// happen for well-formed instances), or — with the transport engaged —
/// wrapping [`ftclust_netsim::SimError::DeliveryFailed`] if loss
/// exceeds a retransmit budget.
pub fn run_dkm_stack(
    inst: &Instance<'_>,
    stack: Stack,
) -> Result<(PortfolioRun, Option<EventLog>), KmdsError> {
    run_cover_stack(
        inst,
        Election::GreedySpan,
        "dkm_iter",
        "Deurer–Kuhn–Maus span greedy",
        stack,
    )
}

/// [`run_dkm_stack`] on the empty stack: the plain synchronous run.
///
/// # Errors
///
/// As [`run_dkm_stack`].
///
/// # Example
///
/// ```
/// use ftclust_core::portfolio::run_dkm_protocol;
/// use ftclust_core::validate::{is_k_dominating_instance, Semantics};
/// use ftclust_core::Instance;
/// use ftclust_graphs::generators;
///
/// let g = generators::gnp(40, 0.15, 7);
/// let inst = Instance::uniform_clamped(&g, 2);
/// let run = run_dkm_protocol(&inst)?;
/// assert!(is_k_dominating_instance(&inst, &run.set, Semantics::CoverSelf));
/// # Ok::<(), ftclust_core::KmdsError>(())
/// ```
pub fn run_dkm_protocol(inst: &Instance<'_>) -> Result<PortfolioRun, KmdsError> {
    run_dkm_stack(inst, Stack::new()).map(|(run, _)| run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::{is_k_dominating_instance, Semantics};
    use ftclust_graphs::generators;
    use ftclust_netsim::transport::TransportConfig;
    use ftclust_netsim::ChurnPlan;

    #[test]
    fn produces_valid_cover_self_sets() {
        for (g, k) in [
            (generators::cycle(12), 2u32),
            (generators::gnp(60, 0.12, 3), 2),
            (generators::grid_2d(8, 7), 3),
            (generators::star(9), 1),
            (generators::empty(5), 1),
        ] {
            let inst = Instance::uniform_clamped(&g, k);
            let run = run_dkm_protocol(&inst).unwrap();
            assert!(
                is_k_dominating_instance(&inst, &run.set, Semantics::CoverSelf),
                "invalid set at k={k}"
            );
            assert!(run.logical_rounds <= 3 * (g.node_count() as u64 + 2));
        }
    }

    #[test]
    fn star_center_wins_the_span_election() {
        // The hub of a star has span n; the greedy election must pick
        // it alone for k = 1.
        let g = generators::star(16);
        let inst = Instance::uniform_clamped(&g, 1);
        let run = run_dkm_protocol(&inst).unwrap();
        assert_eq!(run.set.len(), 1, "span greedy should pick only the hub");
        assert!(run.set.contains(ftclust_graphs::NodeId::new(0)));
    }

    #[test]
    fn span_greedy_is_never_larger_than_layered_on_the_bench_families() {
        for seed in [1u64, 5, 9] {
            let g = generators::gnp(80, 0.1, seed);
            let inst = Instance::uniform_clamped(&g, 2);
            let dkm = run_dkm_protocol(&inst).unwrap();
            let pb = super::super::run_pb_protocol(&inst).unwrap();
            assert!(
                dkm.set.len() <= pb.set.len(),
                "span greedy ({}) beat by layered growth ({}) at seed {seed}",
                dkm.set.len(),
                pb.set.len()
            );
        }
    }

    #[test]
    fn lossy_transport_is_transparent() {
        let g = generators::gnp(40, 0.15, 11);
        let inst = Instance::uniform_clamped(&g, 2);
        let (lossless, _) = run_dkm_stack(&inst, Stack::new()).unwrap();
        for p in [0.05, 0.2] {
            let (lossy, _) = run_dkm_stack(
                &inst,
                Stack::new()
                    .churned(ChurnPlan::none().drop_probability(p))
                    .transport(TransportConfig::default()),
            )
            .unwrap();
            assert_eq!(lossy.set, lossless.set, "loss changed the set at p={p}");
            assert!(lossy.metrics.retransmits > 0, "no loss exercised at p={p}");
        }
    }
}
