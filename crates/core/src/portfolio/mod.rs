//! Competitor algorithm portfolio on the unified executor stack.
//!
//! PAPERS.md names two direct competitors to the paper's LP-based
//! pipeline, and ROADMAP item 3 asks for them as first-class metered
//! protocols so the north-star question — *which clustering algorithm
//! should production run for this workload* — can be answered from
//! measurements instead of asymptotics. This module provides three
//! [`ftclust_netsim::NodeLogic`] protocols, each with a `run_*_stack`
//! entry point that composes with the `.lossy/.churned/.traced/
//! .adversarial` layers exactly like the paper's own algorithms:
//!
//! * [`pb`] — **Penso–Barbosa-style layered growth** (after their
//!   distributed k-dominating-set algorithm): uncovered regions elect
//!   hashed-id local minima in rounds, growing the set one independent
//!   layer at a time, obliviously to coverage gain. Fast and cheap per
//!   round, but the sets are larger.
//! * [`dkm`] — **Deurer–Kuhn–Maus-style span-greedy** (after their
//!   deterministic CONGEST MDS approximation): the same skeleton, but
//!   candidates bid their *span* (how many still-needy closed neighbors
//!   they would newly cover) and local span maxima win — the
//!   message-passing rendition of greedy rounding, k-fold generalized.
//!   Smaller sets, a few more rounds and bits.
//! * [`central`] — the **centralized greedy `H(Δ+1)` baseline**: the
//!   engine's [`crate::baselines::greedy_kmds`] picks the set, and a
//!   two-round announce/verify protocol meters what merely
//!   *distributing* a centrally computed solution costs. The reference
//!   upper bound of the leaderboard.
//!
//! All three produce sets valid under
//! [`crate::validate::Semantics::CoverSelf`], the LP `(PP)` semantics,
//! so their sizes are directly comparable to the fractional program's
//! dual lower bound via [`crate::validate::certified_ratio`]
//! (CoverSelf implies Strict). The `exp_portfolio` benchmark sweeps
//! them against the paper's pipeline across graph families × demands ×
//! fault regimes, and [`recommend`] condenses the measured leaderboard
//! into a workload → algorithm heuristic.

pub mod central;
mod cover;
pub mod dkm;
pub mod pb;

pub use central::{run_cgreedy_protocol, run_cgreedy_stack, GreedyMsg};
pub use cover::CoverMsg;
pub use dkm::{run_dkm_protocol, run_dkm_stack};
pub use pb::{run_pb_protocol, run_pb_stack};

use crate::DominatingSet;
use ftclust_netsim::Metrics;

/// Result of a portfolio protocol execution.
#[derive(Debug, Clone)]
pub struct PortfolioRun {
    /// The computed dominating set (valid under
    /// [`crate::validate::Semantics::CoverSelf`]).
    pub set: DominatingSet,
    /// Rounds, messages and bits of the physical execution.
    pub metrics: Metrics,
    /// Logical protocol rounds (loss stretches physical rounds, never
    /// this).
    pub logical_rounds: u64,
}

/// The algorithms [`recommend`] can select between.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// The paper's own pipeline (Algorithms 1 + 2): LP solve plus
    /// randomized rounding, with a dual certificate for free.
    KuhnMoscibrodaWattenhofer,
    /// [`pb`]: layered hashed-id growth.
    PensoBarbosa,
    /// [`dkm`]: span-greedy growth.
    DeurerKuhnMaus,
    /// [`central`]: centralized greedy, distributed for verification
    /// only.
    CentralGreedy,
}

impl Algorithm {
    /// Short stable identifier used in leaderboards and JSON reports.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::KuhnMoscibrodaWattenhofer => "kmw",
            Algorithm::PensoBarbosa => "pb",
            Algorithm::DeurerKuhnMaus => "dkm",
            Algorithm::CentralGreedy => "cgreedy",
        }
    }
}

/// A workload description for [`recommend`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Workload {
    /// Whether the deployment can ship a centrally computed set to the
    /// nodes (a sink/base station with global topology knowledge).
    pub centralized_ok: bool,
    /// Whether cluster-head count dominates the cost model (energy per
    /// head) rather than convergence latency.
    pub set_size_critical: bool,
    /// Whether a certified approximation ratio must accompany the set
    /// (e.g. for SLA reporting against the LP dual bound).
    pub needs_certificate: bool,
}

/// Condenses the measured E17 leaderboard into a workload → algorithm
/// choice.
///
/// The decision order mirrors the measurements (see EXPERIMENTS §E17):
/// a reachable central coordinator makes [`Algorithm::CentralGreedy`]
/// strictly dominant (smallest sets, two rounds, fewest bits); among
/// the distributed options the paper's pipeline is the only one that
/// ships a dual certificate with the set; otherwise the span-greedy
/// [`Algorithm::DeurerKuhnMaus`] wins on set size (E17: ~0.6× pb's
/// ratio) and the layered [`Algorithm::PensoBarbosa`] on message
/// volume (1-bit candidacies; ~0.85× pb/dkm bit ratio at n = 200),
/// with comparable round counts.
pub fn recommend(w: &Workload) -> Algorithm {
    if w.centralized_ok {
        Algorithm::CentralGreedy
    } else if w.needs_certificate {
        Algorithm::KuhnMoscibrodaWattenhofer
    } else if w.set_size_critical {
        Algorithm::DeurerKuhnMaus
    } else {
        Algorithm::PensoBarbosa
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recommend_follows_the_leaderboard_order() {
        let base = Workload {
            centralized_ok: false,
            set_size_critical: false,
            needs_certificate: false,
        };
        assert_eq!(recommend(&base), Algorithm::PensoBarbosa);
        assert_eq!(
            recommend(&Workload {
                set_size_critical: true,
                ..base
            }),
            Algorithm::DeurerKuhnMaus
        );
        assert_eq!(
            recommend(&Workload {
                needs_certificate: true,
                set_size_critical: true,
                ..base
            }),
            Algorithm::KuhnMoscibrodaWattenhofer
        );
        // A central coordinator trumps everything.
        assert_eq!(
            recommend(&Workload {
                centralized_ok: true,
                needs_certificate: true,
                set_size_critical: true,
                ..base
            }),
            Algorithm::CentralGreedy
        );
    }

    #[test]
    fn algorithm_names_are_stable() {
        for (algo, name) in [
            (Algorithm::KuhnMoscibrodaWattenhofer, "kmw"),
            (Algorithm::PensoBarbosa, "pb"),
            (Algorithm::DeurerKuhnMaus, "dkm"),
            (Algorithm::CentralGreedy, "cgreedy"),
        ] {
            assert_eq!(algo.name(), name);
        }
    }
}
