//! Centralized greedy `H(Δ+1)` baseline, metered for distribution.
//!
//! The engine-side [`greedy_kmds`] is the classical sequential greedy —
//! the `H(Δ + 1)`-approximation reference upper bound of the
//! leaderboard. Production would compute it at a sink and ship the
//! result, so the protocol here meters exactly that: a **two-round
//! announce/verify** run in which preloaded members broadcast a 1-bit
//! membership beacon (`greedy_announce`) and every node checks its
//! demand against the observed closed neighborhood (`greedy_verify`).
//! Rounds and bits on the leaderboard are therefore the *distribution*
//! cost of a centrally computed set — the floor any distributed
//! algorithm is competing against.

use crate::baselines::greedy_kmds;
use crate::validate::Semantics;
use crate::{DominatingSet, Instance, KmdsError};
use ftclust_netsim::exec::{Executor, Phase, Stack};
use ftclust_netsim::{Context, Control, Envelope, EventLog, NodeLogic, Payload, Topology};

use super::PortfolioRun;

/// Wire messages of the announce/verify protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GreedyMsg {
    /// 1-bit membership beacon from a preloaded set member.
    Member,
}

impl Payload for GreedyMsg {
    fn bit_size(&self) -> usize {
        1
    }
}

/// Per-node state: the preloaded membership plus the verification
/// verdict.
#[derive(Debug)]
struct GreedyNode {
    member: bool,
    demand: u32,
    verified: bool,
}

impl NodeLogic for GreedyNode {
    type Payload = GreedyMsg;

    fn on_round(
        &mut self,
        inbox: &[Envelope<GreedyMsg>],
        ctx: &mut Context<'_, GreedyMsg>,
    ) -> Control {
        if ctx.round() == 0 {
            if self.member {
                ctx.broadcast(GreedyMsg::Member);
            }
            return Control::Continue;
        }
        // Verify round: every inbox entry is a member beacon.
        let covered = u32::from(self.member) + inbox.len() as u32;
        self.verified = covered >= self.demand;
        Control::Halt
    }
}

/// Runs the centralized-greedy baseline through the composable executor
/// stack: [`greedy_kmds`] (under [`Semantics::CoverSelf`], so the LP
/// dual bound applies) picks the set, and the two-round announce/verify
/// protocol distributes and checks it under the selected transport,
/// churn, tracing and adversarial layers. Traced runs attribute the
/// rounds to the `greedy_announce` and `greedy_verify` spans.
///
/// # Errors
///
/// Returns [`KmdsError::Sim`] if the round budget is exceeded (cannot
/// happen), or — with the transport engaged — wrapping
/// [`ftclust_netsim::SimError::DeliveryFailed`] if loss exceeds a
/// retransmit budget.
#[cfg_attr(not(feature = "strict-invariants"), allow(unused_variables))]
pub fn run_cgreedy_stack(
    inst: &Instance<'_>,
    stack: Stack,
) -> Result<(PortfolioRun, Option<EventLog>), KmdsError> {
    let g = inst.graph();
    let engine_set = greedy_kmds(inst, Semantics::CoverSelf);
    let _transported = stack.engages_transport();
    let run = Executor::new(
        Topology::from_graph(g),
        |v| GreedyNode {
            member: engine_set.contains(v),
            demand: inst.demand(v),
            verified: false,
        },
        0,
    )
    .stack(stack)
    .phases(vec![
        Phase::span("greedy_announce", 1),
        Phase::tail("greedy_verify"),
    ])
    .run(4)?;
    let set = DominatingSet::from_members(run.logics.iter().map(|l| l.member).collect());
    #[cfg(feature = "strict-invariants")]
    {
        assert_eq!(
            set, engine_set,
            "centralized greedy: distribution changed the set"
        );
        for (i, node) in run.logics.iter().enumerate() {
            assert!(
                node.verified,
                "centralized greedy: node {i} failed coverage verification"
            );
        }
        if _transported {
            crate::audit::loss_transparent("centralized greedy", &set, &engine_set);
        }
        if let Some(log) = &run.log {
            if let Err(e) = log.reconcile(&run.metrics) {
                unreachable!("centralized greedy: trace rollups diverged from Metrics: {e}");
            }
        }
    }
    Ok((
        PortfolioRun {
            set,
            metrics: run.metrics,
            logical_rounds: run.logical_rounds,
        },
        run.log,
    ))
}

/// [`run_cgreedy_stack`] on the empty stack: the plain synchronous run.
///
/// # Errors
///
/// As [`run_cgreedy_stack`].
///
/// # Example
///
/// ```
/// use ftclust_core::portfolio::run_cgreedy_protocol;
/// use ftclust_core::validate::{is_k_dominating_instance, Semantics};
/// use ftclust_core::Instance;
/// use ftclust_graphs::generators;
///
/// let g = generators::gnp(40, 0.15, 7);
/// let inst = Instance::uniform_clamped(&g, 2);
/// let run = run_cgreedy_protocol(&inst)?;
/// assert!(is_k_dominating_instance(&inst, &run.set, Semantics::CoverSelf));
/// assert_eq!(run.metrics.rounds, 2);
/// # Ok::<(), ftclust_core::KmdsError>(())
/// ```
pub fn run_cgreedy_protocol(inst: &Instance<'_>) -> Result<PortfolioRun, KmdsError> {
    run_cgreedy_stack(inst, Stack::new()).map(|(run, _)| run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftclust_graphs::generators;
    use ftclust_netsim::transport::TransportConfig;
    use ftclust_netsim::ChurnPlan;

    #[test]
    fn protocol_distributes_the_engine_set_in_two_rounds() {
        let g = generators::gnp(50, 0.15, 4);
        let inst = Instance::uniform_clamped(&g, 2);
        let engine = greedy_kmds(&inst, Semantics::CoverSelf);
        let run = run_cgreedy_protocol(&inst).unwrap();
        assert_eq!(run.set, engine);
        assert_eq!(run.metrics.rounds, 2);
        // Announce costs one beacon per member edge, nothing else.
        assert_eq!(run.metrics.max_message_bits, 1);
    }

    #[test]
    fn baseline_upper_bounds_the_distributed_protocols() {
        for seed in [2u64, 8] {
            let g = generators::gnp(70, 0.12, seed);
            let inst = Instance::uniform_clamped(&g, 2);
            let cg = run_cgreedy_protocol(&inst).unwrap();
            let dkm = super::super::run_dkm_protocol(&inst).unwrap();
            let pb = super::super::run_pb_protocol(&inst).unwrap();
            assert!(cg.set.len() <= dkm.set.len());
            assert!(cg.set.len() <= pb.set.len());
        }
    }

    #[test]
    fn lossy_transport_is_transparent() {
        let g = generators::gnp(40, 0.15, 11);
        let inst = Instance::uniform_clamped(&g, 2);
        let (lossless, _) = run_cgreedy_stack(&inst, Stack::new()).unwrap();
        let (lossy, _) = run_cgreedy_stack(
            &inst,
            Stack::new()
                .churned(ChurnPlan::none().drop_probability(0.2))
                .transport(TransportConfig::default()),
        )
        .unwrap();
        assert_eq!(lossy.set, lossless.set, "loss changed the set");
        assert!(lossy.metrics.retransmits > 0, "no loss exercised");
    }
}
