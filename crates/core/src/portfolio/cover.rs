//! Shared cover-growth skeleton of the distributed portfolio protocols.
//!
//! Both [`super::pb`] and [`super::dkm`] grow a
//! [`crate::validate::Semantics::CoverSelf`] k-fold dominating set
//! through the same repeating **3-round iteration**, differing only in
//! the election rule:
//!
//! 1. **Status** — every active node folds the previous iteration's
//!    `Joined` announcements into its coverage count and broadcasts its
//!    residual demand.
//! 2. **Candidacy** — nodes refresh their neighbors' residuals from the
//!    statuses; a node whose closed neighborhood is fully satisfied
//!    halts. Non-members with positive *span* (number of still-needy
//!    closed neighbors they would newly cover) declare candidacy.
//! 3. **Election** — a candidate joins the set iff its election key
//!    beats every candidate neighbor's; joiners announce `Joined`.
//!
//! Since the globally extremal candidate always wins its neighborhood,
//! every iteration with a needy node adds at least one member, so the
//! protocol terminates within `n + 1` iterations; in practice many
//! independent local winners join per iteration. Halting is staggered —
//! a node may stop while distant regions keep growing — which the
//! simulator and the reliable transport both support: messages to a
//! halted node are delivered (and acknowledged) but never read, and
//! residuals are monotone, so a halted node can never be needed again.
//!
//! ### Message-size accounting
//!
//! Residuals and spans are bounded by `δ(v) + 1`, so both are metered
//! at their logarithmic width via [`bits_for_ids`]; candidacy
//! declarations without a bid and `Joined` announcements are 1-bit
//! beacons. No flat words are transmitted — the skeleton is
//! CONGEST-conformant with `O(log Δ)` bits per message.

use crate::{DominatingSet, Instance, KmdsError};
use ftclust_graphs::NodeId;
use ftclust_netsim::exec::{Executor, Phase, Stack};
use ftclust_netsim::{
    bits_for_ids, Context, Control, Envelope, EventLog, NodeLogic, Payload, Topology,
};

use super::PortfolioRun;

/// Election rule distinguishing the distributed portfolio protocols.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Election {
    /// Penso–Barbosa-style layered growth: the hashed-id local minimum
    /// among candidates wins, obliviously to coverage gain.
    LayeredId,
    /// Deurer–Kuhn–Maus-style greedy rounding: the local span maximum
    /// wins, hashed id as tie-break.
    GreedySpan,
}

/// Wire messages of the cover-growth skeleton.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoverMsg {
    /// A node's residual demand, broadcast each status round.
    Status {
        /// How many more closed-neighborhood members the sender needs.
        residual: u32,
    },
    /// Presence-only candidacy declaration ([`Election::LayeredId`]:
    /// the election key is the hashed sender id, which the receiver
    /// derives from the envelope).
    Candidate,
    /// Candidacy bid carrying the sender's span
    /// ([`Election::GreedySpan`]).
    SpanBid {
        /// Still-needy closed neighbors the sender would newly cover.
        span: u32,
    },
    /// The sender joined the dominating set this iteration.
    Joined,
}

impl Payload for CoverMsg {
    fn bit_size(&self) -> usize {
        match self {
            CoverMsg::Status { residual } => bits_for_ids(*residual as usize + 2),
            CoverMsg::Candidate => 1,
            CoverMsg::SpanBid { span } => bits_for_ids(*span as usize + 2),
            CoverMsg::Joined => 1,
        }
    }
}

/// SplitMix64 finalizer used as the election priority. Raw node ids are
/// adversarial on grid-like families (row-major ids make the layered
/// election degenerate into a Θ(n) sequential sweep); hashing restores
/// the expected wide independent layers on every family, and keeps the
/// run deterministic — the priority depends on the id alone.
fn mix(v: NodeId) -> u64 {
    let mut z = (v.index() as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Per-node state of the cover-growth skeleton.
#[derive(Debug)]
pub(crate) struct CoverNode {
    election: Election,
    demand: u32,
    /// Whether this node is in the dominating set.
    pub(crate) member: bool,
    /// Members observed in the closed neighborhood (self included once
    /// joined).
    covered: u32,
    /// Last-known residual per sorted neighbor. Halted neighbors stop
    /// broadcasting, but their final status was 0 and residuals are
    /// monotone non-increasing, so the stale value stays correct.
    nres: Vec<u32>,
    /// Whether this node declared candidacy in the current iteration.
    bidding: bool,
    /// The span bid backing the declaration.
    my_span: u32,
}

impl CoverNode {
    fn new(election: Election, demand: u32) -> Self {
        CoverNode {
            election,
            demand,
            member: false,
            covered: 0,
            nres: Vec::new(),
            bidding: false,
            my_span: 0,
        }
    }

    fn residual(&self) -> u32 {
        self.demand.saturating_sub(self.covered)
    }

    /// `true` iff this node's key beats the rival's — a strict total
    /// order (ids are distinct), so adjacent candidates always agree on
    /// their relative rank.
    fn beats(&self, me: NodeId, rival: NodeId, rival_span: u32) -> bool {
        match self.election {
            Election::LayeredId => (mix(me), me.index()) < (mix(rival), rival.index()),
            Election::GreedySpan => {
                (
                    self.my_span,
                    std::cmp::Reverse(mix(me)),
                    std::cmp::Reverse(me.index()),
                ) > (
                    rival_span,
                    std::cmp::Reverse(mix(rival)),
                    std::cmp::Reverse(rival.index()),
                )
            }
        }
    }
}

impl NodeLogic for CoverNode {
    type Payload = CoverMsg;

    fn on_round(
        &mut self,
        inbox: &[Envelope<CoverMsg>],
        ctx: &mut Context<'_, CoverMsg>,
    ) -> Control {
        match ctx.round() % 3 {
            0 => {
                // Status round: fold in the joins announced last
                // election round, then broadcast the updated residual.
                if ctx.round() == 0 {
                    self.nres = vec![u32::MAX; ctx.degree()];
                } else {
                    for env in inbox {
                        match env.payload {
                            CoverMsg::Joined => self.covered += 1,
                            _ => unreachable!("status round expects Joined"),
                        }
                    }
                }
                ctx.broadcast(CoverMsg::Status {
                    residual: self.residual(),
                });
                Control::Continue
            }
            1 => {
                // Candidacy round: refresh neighbor residuals, halt on
                // a fully satisfied closed neighborhood, else bid.
                for env in inbox {
                    match env.payload {
                        CoverMsg::Status { residual } => {
                            let o = match ctx.neighbors().binary_search(&env.from) {
                                Ok(o) => o,
                                // The simulator only delivers along topology edges.
                                Err(_) => unreachable!("status from a non-neighbor"),
                            };
                            self.nres[o] = residual;
                        }
                        _ => unreachable!("candidacy round expects Status"),
                    }
                }
                if self.residual() == 0 && self.nres.iter().all(|&r| r == 0) {
                    return Control::Halt;
                }
                self.my_span = u32::from(self.residual() > 0)
                    + self
                        .nres
                        .iter()
                        .filter(|&&r| r > 0 && r != u32::MAX)
                        .count() as u32;
                self.bidding = !self.member && self.my_span > 0;
                if self.bidding {
                    match self.election {
                        Election::LayeredId => ctx.broadcast(CoverMsg::Candidate),
                        Election::GreedySpan => {
                            ctx.broadcast(CoverMsg::SpanBid { span: self.my_span });
                        }
                    }
                }
                Control::Continue
            }
            _ => {
                // Election round: a candidate joins iff it beats every
                // rival candidate in its neighborhood.
                if self.bidding {
                    let me = ctx.me();
                    let wins = inbox.iter().all(|env| match env.payload {
                        CoverMsg::Candidate => self.beats(me, env.from, 0),
                        CoverMsg::SpanBid { span } => self.beats(me, env.from, span),
                        _ => unreachable!("election round expects bids"),
                    });
                    if wins {
                        self.member = true;
                        self.covered += 1;
                        ctx.broadcast(CoverMsg::Joined);
                    }
                    self.bidding = false;
                }
                Control::Continue
            }
        }
    }
}

/// Shared stack driver behind [`super::run_pb_stack`] and
/// [`super::run_dkm_stack`]: builds the skeleton with the given
/// election rule, runs it through the composable executor, and
/// assembles the set from the final member flags.
#[cfg_attr(not(feature = "strict-invariants"), allow(unused_variables))]
pub(crate) fn run_cover_stack(
    inst: &Instance<'_>,
    election: Election,
    span_name: &'static str,
    what: &str,
    stack: Stack,
) -> Result<(PortfolioRun, Option<EventLog>), KmdsError> {
    let g = inst.graph();
    let n = g.node_count() as u64;
    let _transported = stack.engages_transport();
    // At least one join per 3-round iteration until every demand is
    // met (at most n joins), plus the all-quiet detection iteration.
    let budget = 3 * (n + 2) + 3;
    let run = Executor::new(
        Topology::from_graph(g),
        |v: NodeId| CoverNode::new(election, inst.demand(v)),
        0,
    )
    .stack(stack)
    .phases(vec![Phase::repeat(span_name, 3)])
    .run(budget)?;
    let set = DominatingSet::from_members(run.logics.iter().map(|l| l.member).collect());
    #[cfg(feature = "strict-invariants")]
    {
        assert!(
            crate::validate::is_k_dominating_instance(
                inst,
                &set,
                crate::validate::Semantics::CoverSelf
            ),
            "{what}: assembled set violates CoverSelf demands"
        );
        if _transported {
            let (lossless, _) = run_cover_stack(inst, election, span_name, what, Stack::new())?;
            crate::audit::loss_transparent(what, &set, &lossless.set);
        }
        if let Some(log) = &run.log {
            if let Err(e) = log.reconcile(&run.metrics) {
                unreachable!("{what}: trace rollups diverged from Metrics: {e}");
            }
        }
    }
    Ok((
        PortfolioRun {
            set,
            metrics: run.metrics,
            logical_rounds: run.logical_rounds,
        },
        run.log,
    ))
}
