//! Closed-form bounds from the paper's theorems, used by the experiment
//! harness to print measured-vs-predicted tables.

use crate::Instance;
use ftclust_geometry::{Point, SpatialGrid};
use ftclust_graphs::UnitDiskGraph;

/// Theorem 4.5: Algorithm 1 approximates the LP `(PP)` within
/// `t·((Δ+1)^{2/t} + (Δ+1)^{1/t})`.
///
/// # Panics
///
/// Panics if `t == 0`.
pub fn theorem_4_5_bound(t: u32, delta: usize) -> f64 {
    assert!(t >= 1, "t must be at least 1");
    let d1 = (delta + 1) as f64;
    t as f64 * (d1.powf(2.0 / t as f64) + d1.powf(1.0 / t as f64))
}

/// Theorem 4.6: randomized rounding of a `ρ`-approximate fractional
/// solution yields an integral solution of expected ratio
/// `ρ·ln(Δ+1) + O(1)`. The returned value uses the additive constant
/// `c = 2`, which upper-bounds the `E[Y] = O(OPT)` term observed in all
/// experiments.
pub fn theorem_4_6_bound(rho: f64, delta: usize) -> f64 {
    rho * ((delta + 1) as f64).ln() + 2.0
}

/// The locality lower bound of Kuhn, Moscibroda & Wattenhofer (PODC 2004),
/// quoted in the paper's introduction: in `O(t)` rounds no algorithm can
/// approximate (k-)MDS better than `Ω(Δ^{1/t} / t)`. Returned with
/// constant 1 — experiment E10 plots the measured trade-off between this
/// curve and [`theorem_4_5_bound`].
///
/// # Panics
///
/// Panics if `t == 0`.
pub fn kmw_lower_bound(t: u32, delta: usize) -> f64 {
    assert!(t >= 1, "t must be at least 1");
    ((delta as f64).max(1.0)).powf(1.0 / t as f64) / t as f64
}

/// The trivial covering bound: under `(PP)` semantics each selected node
/// supplies one unit of coverage to at most `Δ + 1` closed neighborhoods,
/// so `OPT ≥ Σ_i k_i / (Δ + 1)`.
pub fn degree_lower_bound(inst: &Instance<'_>) -> f64 {
    let delta = inst.graph().max_degree();
    inst.total_demand() as f64 / (delta + 1) as f64
}

/// A packing lower bound for unit disk graphs, valid under **both**
/// semantics: greedily selects a set of nodes with pairwise distance
/// `> 2r` (so their radius-`r` balls are disjoint); each ball must contain
/// at least one dominator (the net point itself if it is selected,
/// otherwise one of its `≥ k ≥ 1` dominators), hence
/// `OPT ≥ net size`.
///
/// Deterministic: nodes are scanned in id order.
pub fn udg_packing_lower_bound(udg: &UnitDiskGraph) -> usize {
    let r = udg.radius();
    let pts = udg.positions();
    if pts.is_empty() {
        return 0;
    }
    let grid = SpatialGrid::build(pts, 2.0 * r);
    let mut chosen: Vec<Point> = Vec::new();
    let mut chosen_mask = vec![false; pts.len()];
    for (i, &p) in pts.iter().enumerate() {
        let mut blocked = false;
        grid.for_each_within(p, 2.0 * r, |j| {
            if chosen_mask[j as usize] {
                blocked = true;
            }
        });
        if !blocked {
            chosen_mask[i] = true;
            chosen.push(p);
        }
    }
    chosen.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftclust_graphs::generators;

    #[test]
    fn theorem_4_5_shapes() {
        // t = 1: (Δ+1)² + (Δ+1).
        assert_eq!(theorem_4_5_bound(1, 3), 16.0 + 4.0);
        // Large t approaches 2t (both powers → 1).
        let b = theorem_4_5_bound(1000, 10);
        assert!(b > 2000.0 && b < 2100.0);
        // Monotone decreasing in t for moderate Δ and small t.
        assert!(theorem_4_5_bound(2, 100) < theorem_4_5_bound(1, 100));
        assert!(theorem_4_5_bound(4, 100) < theorem_4_5_bound(2, 100));
    }

    #[test]
    fn theorem_4_6_grows_logarithmically() {
        let a = theorem_4_6_bound(1.0, 10);
        let b = theorem_4_6_bound(1.0, 100);
        assert!(b > a);
        assert!((a - (11f64.ln() + 2.0)).abs() < 1e-12);
    }

    #[test]
    fn kmw_curve() {
        assert_eq!(kmw_lower_bound(1, 16), 16.0);
        assert!((kmw_lower_bound(2, 16) - 2.0).abs() < 1e-12);
        assert!(kmw_lower_bound(4, 16) < kmw_lower_bound(2, 16));
    }

    #[test]
    fn degree_bound_on_known_graphs() {
        let g = generators::complete(5);
        let inst = Instance::uniform(&g, 2).unwrap();
        // Σk = 10, Δ+1 = 5 → bound 2 (= OPT).
        assert_eq!(degree_lower_bound(&inst), 2.0);
    }

    #[test]
    fn packing_bound_is_valid_on_clusters() {
        // Two far-apart cliques: net size 2; OPT (k=1) is 2.
        let pts = vec![
            ftclust_geometry::Point::new(0.0, 0.0),
            ftclust_geometry::Point::new(0.1, 0.0),
            ftclust_geometry::Point::new(10.0, 0.0),
            ftclust_geometry::Point::new(10.1, 0.0),
        ];
        let udg = ftclust_graphs::UnitDiskGraph::build(pts, 1.0).unwrap();
        assert_eq!(udg_packing_lower_bound(&udg), 2);
    }

    #[test]
    fn packing_bound_single_cluster() {
        let udg = generators::random_udg_in_square(50, 1.0, 1.0, 3);
        // Everything within distance √2 < 2r·…: with r = 1 and a unit
        // square, all points are within 2 of each other → net size 1.
        assert_eq!(udg_packing_lower_bound(&udg), 1);
    }

    #[test]
    fn packing_bound_empty() {
        let udg = ftclust_graphs::UnitDiskGraph::build(vec![], 1.0).unwrap();
        assert_eq!(udg_packing_lower_bound(&udg), 0);
    }
}
