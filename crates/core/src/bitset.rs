//! Packed `u64`-word bit sets for the engines' node masks.
//!
//! The in-memory engines spend most of their time scanning boolean node
//! masks: *is this neighbor a leader / white / needy?* As `Vec<bool>`,
//! those masks cost one byte per node; packed into `u64` words they are
//! 8× denser, whole-mask operations (`any`, `count`, `|=`, `&=`) run 64
//! nodes per instruction, and the hot coverage scans touch an eighth of
//! the cache lines.
//!
//! Determinism discipline: a [`BitSet`] is plain data — building one in
//! parallel is safe exactly when every worker owns whole *words*
//! ([`BitSet::words_mut`] with word-aligned chunking), because two nodes
//! in one word alias one memory cell. Engines that flip bits from a
//! parallel phase therefore collect per-shard index lists and apply them
//! serially in shard order, exactly like every other merge in this
//! workspace (see `DESIGN.md` §8 and §12).

use ftclust_graphs::{Graph, NodeId};
use ftclust_par as par;

/// Bits per storage word.
const WORD_BITS: usize = 64;

/// A fixed-length set of node indices, packed 64 per `u64` word.
///
/// Bits past `len` (the tail of the last word) are always zero — every
/// mutating method maintains that invariant, so whole-word operations
/// like [`BitSet::count`] need no masking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// An all-zero set over `len` indices.
    pub fn new(len: usize) -> Self {
        BitSet {
            words: vec![0; len.div_ceil(WORD_BITS)],
            len,
        }
    }

    /// Packs a boolean mask.
    pub fn from_bools(bools: &[bool]) -> Self {
        let mut set = BitSet::new(bools.len());
        for (i, &b) in bools.iter().enumerate() {
            if b {
                set.words[i / WORD_BITS] |= 1u64 << (i % WORD_BITS);
            }
        }
        set
    }

    /// Builds a set of `len` indices from a predicate, filling whole
    /// words **in parallel** (each worker owns a word-aligned chunk, so
    /// no two workers share a word and the result is identical at every
    /// thread count). The predicate must be a pure function of state
    /// frozen for the call.
    pub fn from_fn_par(len: usize, pred: impl Fn(usize) -> bool + Sync) -> Self {
        let mut set = BitSet::new(len);
        let nwords = set.words.len();
        par::par_chunks_mut(
            &mut set.words,
            par::default_chunk(nwords),
            |word_start, words| {
                for (j, w) in words.iter_mut().enumerate() {
                    let base = (word_start + j) * WORD_BITS;
                    let mut bits = 0u64;
                    for b in 0..WORD_BITS.min(len - base) {
                        bits |= u64::from(pred(base + b)) << b;
                    }
                    *w = bits;
                }
            },
        );
        set
    }

    /// Number of indices the set ranges over (not the popcount).
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the set ranges over zero indices.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tests index `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / WORD_BITS] >> (i % WORD_BITS) & 1 != 0
    }

    /// Inserts index `i`.
    #[inline]
    pub fn insert(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / WORD_BITS] |= 1u64 << (i % WORD_BITS);
    }

    /// Removes index `i`.
    #[inline]
    pub fn remove(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / WORD_BITS] &= !(1u64 << (i % WORD_BITS));
    }

    /// Number of set indices (popcount over whole words).
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` if any index is set.
    pub fn any(&self) -> bool {
        self.words.iter().any(|&w| w != 0)
    }

    /// `self |= other`, word-wise.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn or_assign(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "bit set length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// `self &= other`, word-wise.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn and_assign(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "bit set length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// `true` if `self` has any index that `other` lacks (`self & !other
    /// ≠ ∅`) — the engines' progress test, without materializing the
    /// difference.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn any_outside(&self, other: &BitSet) -> bool {
        assert_eq!(self.len, other.len, "bit set length mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .any(|(a, b)| a & !b != 0)
    }

    /// The set indices, ascending.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut rest = w;
            std::iter::from_fn(move || {
                if rest == 0 {
                    return None;
                }
                let bit = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                Some(wi * WORD_BITS + bit)
            })
        })
    }

    /// Unpacks into a boolean mask (for `Vec<bool>` API boundaries such
    /// as [`crate::DominatingSet::from_members`]).
    pub fn to_bools(&self) -> Vec<bool> {
        (0..self.len).map(|i| self.get(i)).collect()
    }

    /// The backing words, for word-aligned parallel construction.
    ///
    /// Writers must keep the tail invariant: bits at positions `≥ len`
    /// in the last word stay zero.
    pub fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// The backing words, read-only.
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

/// Per-node count of `members` in each closed neighborhood — the
/// k-coverage scan shared by Algorithm 3 Part II and the coverage-repair
/// engine. Runs data-parallel over nodes; each count is a pure function
/// of the frozen membership mask, so the result is identical at every
/// thread count.
///
/// # Panics
///
/// Panics if the mask length mismatches the graph.
pub fn coverage_counts(g: &Graph, members: &BitSet) -> Vec<u32> {
    assert_eq!(members.len(), g.node_count(), "membership mask mismatch");
    par::par_map_range(g.node_count(), |i| {
        g.closed_neighbors(NodeId::new(i as u32))
            .filter(|w| members.get(w.index()))
            .count() as u32
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftclust_graphs::generators;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut s = BitSet::new(130); // straddles three words
        assert!(!s.any());
        assert_eq!(s.len(), 130);
        for i in [0usize, 63, 64, 127, 128, 129] {
            assert!(!s.get(i));
            s.insert(i);
            assert!(s.get(i));
        }
        assert_eq!(s.count(), 6);
        s.remove(64);
        assert!(!s.get(64));
        assert_eq!(s.count(), 5);
        assert_eq!(
            s.iter_ones().collect::<Vec<_>>(),
            vec![0, 63, 127, 128, 129]
        );
    }

    #[test]
    fn from_bools_and_back() {
        for n in [0usize, 1, 63, 64, 65, 200] {
            let bools: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
            let s = BitSet::from_bools(&bools);
            assert_eq!(s.to_bools(), bools);
            assert_eq!(s.count(), bools.iter().filter(|&&b| b).count());
        }
    }

    #[test]
    fn from_fn_par_matches_serial_at_any_thread_count() {
        let pred = |i: usize| i % 7 == 0 || i % 11 == 3;
        for n in [0usize, 1, 64, 65, 1000] {
            let expect: Vec<bool> = (0..n).map(pred).collect();
            for threads in [1usize, 2, 7] {
                let s = ftclust_par::with_threads(threads, || BitSet::from_fn_par(n, pred));
                assert_eq!(s.to_bools(), expect, "n={n} threads={threads}");
            }
        }
    }

    #[test]
    fn word_ops() {
        let a = BitSet::from_bools(&[true, false, true, false]);
        let b = BitSet::from_bools(&[true, true, false, false]);
        let mut or = a.clone();
        or.or_assign(&b);
        assert_eq!(or.to_bools(), vec![true, true, true, false]);
        let mut and = a.clone();
        and.and_assign(&b);
        assert_eq!(and.to_bools(), vec![true, false, false, false]);
        assert!(a.any_outside(&b)); // index 2
        assert!(!and.any_outside(&a));
        assert!(!BitSet::new(9).any_outside(&BitSet::new(9)));
    }

    #[test]
    fn tail_bits_stay_zero() {
        let mut s = BitSet::new(70);
        for i in 0..70 {
            s.insert(i);
        }
        assert_eq!(s.count(), 70);
        assert_eq!(s.words()[1], (1u64 << 6) - 1);
        let t = BitSet::from_fn_par(70, |_| true);
        assert_eq!(t.words()[1], (1u64 << 6) - 1);
    }

    #[test]
    fn coverage_counts_matches_scalar_scan() {
        let g = generators::gnp(150, 0.08, 9);
        let members = BitSet::from_fn_par(g.node_count(), |i| i % 4 == 1);
        let got = coverage_counts(&g, &members);
        for i in 0..g.node_count() {
            let want = g
                .closed_neighbors(NodeId::new(i as u32))
                .filter(|w| w.index() % 4 == 1)
                .count() as u32;
            assert_eq!(got[i], want, "node {i}");
        }
    }
}
