//! Runtime invariant audits — the `strict-invariants` feature.
//!
//! Every check here is `debug_assert!`-backed and wired into an
//! algorithm's hot path behind `#[cfg(feature = "strict-invariants")]`,
//! so default builds pay nothing and release builds with the feature pay
//! only the cost of evaluating the conditions. The audited invariants are
//! the load-bearing claims of the paper:
//!
//! * **Algorithm 1** ([`fractional_state`], [`fractional_certificate`]) —
//!   the primal iterate stays in `[0, 1]ⁿ` with monotone coverage, and
//!   the returned `(y, z)` certificate is dual feasible after the
//!   Lemma 4.4 scaling (the premise of every reported lower bound).
//! * **Algorithm 2** ([`closed_coverage`], [`rounding_monotone`]) — the
//!   repair step never *decreases* any node's closed-neighborhood
//!   coverage, and with repair enabled the final set meets every demand
//!   (the deterministic-feasibility half of Theorem 4.6).
//! * **Algorithm 3, Part I** ([`part1_invariants`]) — active sets only
//!   shrink, every node keeps a leader within the telescoped chain radius
//!   `Σᵢ θᵢ` (the deterministic core of Lemma 5.1), and leader density
//!   per radius-`r/2` disk stays `O(1)` (Lemma 5.5, with a generous
//!   explicit constant).
//! * **Coverage repair** ([`repair_postconditions`]) — after
//!   [`crate::repair::repair_coverage`], the healed set strictly
//!   k-dominates the surviving subgraph, contains no dead node, and —
//!   whenever the pre-failure set was itself strictly k-dominating —
//!   every added node lies within 2 hops of a failure (the locality
//!   guarantee of the repair protocol).
//!
//! The audits assume a *validated* instance (`k_i ≤ |N[i]|`), the same
//! precondition the algorithms themselves document.

use crate::fractional::FractionalSolution;
use crate::validate::{is_k_dominating, Semantics};
use crate::{DominatingSet, Instance};
use ftclust_geometry::SpatialGrid;
use ftclust_graphs::{Graph, NodeId, UnitDiskGraph};

/// Tolerance for the feasibility certificates.
const CERT_TOL: f64 = 1e-7;
/// Tolerance for range checks on primal iterates.
const RANGE_TOL: f64 = 1e-12;
/// Hard cap on final leaders per radius-`r/2` disk. Lemma 5.5 bounds the
/// *expectation* by a constant; measured maxima on dense deployments stay
/// around a dozen (see `udg::analysis`), so 64 flags only catastrophic
/// sparsification failures, never statistical noise.
const LEADER_DENSITY_CAP: usize = 64;

/// Audits the per-iteration state of Algorithm 1: `x ∈ [0, 1]ⁿ`, raises
/// non-negative, and coverage counters never negative.
pub(crate) fn fractional_state(x: &[f64], xplus: &[f64], cov: &[f64]) {
    debug_assert!(
        x.iter()
            .all(|&v| (-RANGE_TOL..=1.0 + RANGE_TOL).contains(&v)),
        "strict-invariants: primal iterate left [0, 1]"
    );
    debug_assert!(
        xplus.iter().all(|&v| v >= -RANGE_TOL),
        "strict-invariants: negative raise x⁺"
    );
    debug_assert!(
        cov.iter().all(|&c| c >= -RANGE_TOL),
        "strict-invariants: negative coverage counter"
    );
}

/// Audits the solution Algorithm 1 returns: dual variables in range,
/// primal feasibility, Lemma 4.4 scaled dual feasibility, and weak
/// duality between the certified bound and the primal value.
pub(crate) fn fractional_certificate(inst: &Instance<'_>, sol: &FractionalSolution) {
    debug_assert!(
        sol.y
            .iter()
            .all(|&v| (-RANGE_TOL..=1.0 + RANGE_TOL).contains(&v)),
        "strict-invariants: dual y outside [0, 1] — y is fixed to (Δ+1)^(-p/t)"
    );
    debug_assert!(
        sol.is_primal_feasible(inst, CERT_TOL),
        "strict-invariants: Algorithm 1 returned a primal-infeasible x"
    );
    debug_assert!(
        sol.is_scaled_dual_feasible(inst, CERT_TOL),
        "strict-invariants: (y/κ, z/κ) is not dual feasible — Lemma 4.4 violated"
    );
    debug_assert!(
        sol.lower_bound <= sol.value + CERT_TOL,
        "strict-invariants: certified lower bound {} exceeds primal value {} — weak duality violated",
        sol.lower_bound,
        sol.value
    );
}

/// Closed-neighborhood coverage of each node under `selected` — the
/// snapshot [`rounding_monotone`] compares against.
pub(crate) fn closed_coverage(inst: &Instance<'_>, selected: &[bool]) -> Vec<u32> {
    let g = inst.graph();
    g.nodes()
        .map(|v| {
            g.closed_neighbors(v)
                .filter(|w| selected[w.index()])
                .count() as u32
        })
        .collect()
}

/// Audits Algorithm 2's repair step: per-node coverage is monotone
/// (repair only ever *adds* nodes), and with repair enabled the final
/// set meets every demand — the deterministic-feasibility guarantee.
pub(crate) fn rounding_monotone(
    inst: &Instance<'_>,
    before: &[u32],
    selected: &[bool],
    repaired: bool,
) {
    let after = closed_coverage(inst, selected);
    for (i, (&b, &a)) in before.iter().zip(&after).enumerate() {
        debug_assert!(
            a >= b,
            "strict-invariants: repair decreased node {i}'s coverage ({b} → {a})"
        );
        if repaired {
            let k = inst.demand(NodeId::new(i as u32));
            debug_assert!(
                a >= k,
                "strict-invariants: node {i} left with coverage {a} < demand {k} after repair"
            );
        }
    }
}

/// Audits Algorithm 3 Part I: active masks only shrink round over round,
/// every node has a final leader within `Σᵢ θᵢ` (the deterministic
/// telescoping bound behind Lemma 5.1: a node deactivated in round `i`
/// follows a leader chain of length at most `θ_i + θ_{i+1} + … + θ_R`),
/// and no radius-`r/2` disk around a leader holds more than
/// [`LEADER_DENSITY_CAP`] leaders (Lemma 5.5's `O(1)` density).
///
/// `coverage_radius` must be the sum of the round schedule. Domination at
/// graph distance 1 (the lemma's headline claim) is only guaranteed when
/// the uncapped doubling sum `2·θ_R` applies, so it is asserted by tests,
/// not here.
pub(crate) fn part1_invariants(
    udg: &UnitDiskGraph,
    masks: &[Vec<bool>],
    leaders: &[bool],
    coverage_radius: f64,
) {
    for pair in masks.windows(2) {
        debug_assert!(
            pair[0].iter().zip(&pair[1]).all(|(&was, &is)| was || !is),
            "strict-invariants: a deactivated node became active again"
        );
    }
    let g = udg.graph();
    let leader_pos: Vec<_> = g
        .nodes()
        .filter(|v| leaders[v.index()])
        .map(|v| udg.position(v))
        .collect();
    if g.node_count() > 0 {
        let reach = coverage_radius.max(1e-12);
        let grid = SpatialGrid::build(&leader_pos, reach);
        debug_assert!(
            g.nodes().all(|v| grid.count_within(udg.position(v), reach + 1e-9) > 0),
            "strict-invariants: a node has no leader within Σθ = {coverage_radius} — Lemma 5.1's chain argument violated"
        );
    }
    if !leader_pos.is_empty() {
        let r_half = (udg.radius() / 2.0).max(1e-12);
        let grid = SpatialGrid::build(&leader_pos, r_half);
        debug_assert!(
            leader_pos.iter().all(|&p| grid.count_within(p, r_half) <= LEADER_DENSITY_CAP),
            "strict-invariants: more than {LEADER_DENSITY_CAP} leaders in one radius-r/2 disk — Lemma 5.5 sparsification failed"
        );
    }
}

/// Audits the transport-transparency guarantee: executing a protocol
/// over lossy links (`ftclust_netsim::transport`) must produce the exact
/// output of the lossless execution — loss may stretch physical time and
/// add retransmissions, never change a result. Called by the `*_lossy`
/// runners with the lossless reference result.
pub(crate) fn loss_transparent<T: PartialEq + std::fmt::Debug>(
    what: &str,
    lossy: &T,
    lossless: &T,
) {
    debug_assert!(
        lossy == lossless,
        "strict-invariants: {what} diverged under message loss\n lossy:    {lossy:?}\n lossless: {lossless:?}"
    );
}

/// Audits [`crate::repair::repair_coverage`]'s postconditions: the healed
/// set re-validates as strictly k-dominating on the surviving subgraph,
/// no dead node is a member, and — when the pre-failure set was valid on
/// the full graph — every added node is within 2 hops of a failed node
/// (the repair protocol's locality bound).
pub(crate) fn repair_postconditions(
    g: &Graph,
    before: &DominatingSet,
    alive: &[bool],
    k: u32,
    repaired: &DominatingSet,
    added: &[NodeId],
) {
    debug_assert!(
        repaired.ids().all(|v| alive[v.index()]),
        "strict-invariants: a dead node is a member of the repaired set"
    );
    let (sub, survivors) = crate::repair::surviving_instance(g, repaired, alive);
    debug_assert!(
        is_k_dominating(&sub, &survivors, k, Semantics::Strict),
        "strict-invariants: repaired set does not strictly {k}-dominate the surviving subgraph"
    );
    // The locality bound is only promised when repair started from a set
    // that strictly k-dominated the *full* graph (pre-failure validity).
    if is_k_dominating(g, before, k, Semantics::Strict) {
        let near_failure = |v: NodeId| {
            g.closed_neighbors(v)
                .any(|u| !alive[u.index()] || g.neighbors(u).iter().any(|w| !alive[w.index()]))
        };
        debug_assert!(
            added.iter().all(|&v| near_failure(v)),
            "strict-invariants: repair added a node farther than 2 hops from any failure"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fractional::{solve_fractional, FractionalParams};
    use crate::rounding::{round_fractional, RoundingParams};
    use crate::udg::UdgAlgorithm;
    use crate::validate::{is_k_dominating_instance, Semantics};
    use ftclust_graphs::generators;

    // With the feature on, the hooks inside the algorithms run on every
    // call — these tests exercise all three audited paths end to end.

    #[test]
    fn algorithm_1_passes_audits() {
        for (g, k) in [
            (generators::gnp(80, 0.1, 3), 2u32),
            (generators::cycle(15), 2),
            (generators::star(12), 1),
        ] {
            let inst = Instance::uniform_clamped(&g, k);
            for t in [1, 3] {
                let sol = solve_fractional(&inst, &FractionalParams::new(t)).unwrap();
                assert!(sol.value >= 0.0);
            }
        }
    }

    #[test]
    fn algorithm_2_passes_audits() {
        let g = generators::gnp(70, 0.09, 5);
        let inst = Instance::uniform_clamped(&g, 2);
        let sol = solve_fractional(&inst, &FractionalParams::new(2)).unwrap();
        for seed in 0..5 {
            let out = round_fractional(&inst, &sol.x, sol.delta, seed, &RoundingParams::default());
            assert!(is_k_dominating_instance(
                &inst,
                &out.set,
                Semantics::CoverSelf
            ));
        }
        // The repair-off ablation path is audited for monotonicity only.
        let no_repair = RoundingParams {
            repair: false,
            ..Default::default()
        };
        let _ = round_fractional(&inst, &sol.x, sol.delta, 0, &no_repair);
    }

    #[test]
    fn algorithm_3_passes_audits() {
        let udg = generators::random_udg(400, 8.0, 1.0, 11);
        let run = UdgAlgorithm::new(2).seed(6).run(&udg).unwrap();
        assert!(!run.set.is_empty());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "repair decreased")]
    fn rounding_audit_catches_coverage_regression() {
        let g = generators::cycle(6);
        let inst = Instance::uniform(&g, 1).unwrap();
        // Claim full coverage beforehand while nothing is selected now:
        // the monotonicity audit must fire.
        let before = vec![3u32; 6];
        rounding_monotone(&inst, &before, &[false; 6], false);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "weak duality")]
    fn certificate_audit_catches_inflated_bound() {
        let g = generators::cycle(6);
        let inst = Instance::uniform(&g, 1).unwrap();
        let mut sol = solve_fractional(&inst, &FractionalParams::new(2)).unwrap();
        sol.lower_bound = sol.value + 1.0; // corrupt the certificate
        fractional_certificate(&inst, &sol);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "deactivated node became active")]
    fn part1_audit_catches_resurrected_nodes() {
        let udg = generators::random_udg(20, 4.0, 1.0, 2);
        let n = udg.node_count();
        let masks = vec![vec![false; n], vec![true; n]];
        part1_invariants(&udg, &masks, &vec![true; n], 1.0);
    }

    #[test]
    fn repair_passes_audits() {
        // With the feature on, repair_coverage runs repair_postconditions
        // on every call — exercise the full hook end to end.
        let udg = generators::random_udg(300, 10.0, 1.0, 5);
        let run = UdgAlgorithm::new(2).seed(1).run(&udg).unwrap();
        let mut alive = vec![true; udg.node_count()];
        for v in run.set.ids().take(4) {
            alive[v.index()] = false;
        }
        let out = crate::repair::repair_coverage(
            udg.graph(),
            &run.set,
            &alive,
            2,
            &crate::repair::RepairConfig::new(7),
        )
        .unwrap();
        assert!(out.set.ids().all(|v| alive[v.index()]));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "does not strictly")]
    fn repair_audit_catches_unhealed_set() {
        // Node 1 of the path 0-1-2 dies; claiming the empty set "healed"
        // the survivors must trip the re-validation audit.
        let g = generators::path(3);
        let set = DominatingSet::from_ids(3, [NodeId::new(1)]);
        let alive = [true, false, true];
        repair_postconditions(&g, &set, &alive, 1, &DominatingSet::empty(3), &[]);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "dead node is a member")]
    fn repair_audit_catches_dead_member() {
        let g = generators::cycle(4);
        let set = DominatingSet::full(4);
        let alive = [true, true, false, true];
        repair_postconditions(&g, &set, &alive, 1, &set, &[]);
    }
}
