//! Survivability of k-fold dominating sets under node failures — the
//! paper's motivation, measured.
//!
//! A k-fold dominating set keeps every strictly-dominated node covered as
//! long as fewer than `k` of its dominators fail. This module quantifies
//! that: kill dominators (adversarially sampled or i.i.d.) and measure the
//! residual coverage of the surviving network (experiment E9).

use crate::validate::Semantics;
use crate::{DominatingSet, Instance, KmdsError};
use ftclust_graphs::NodeId;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// How nodes fail.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FailureModel {
    /// Exactly `count` uniformly random *dominators* crash (the targeted /
    /// worst-placement model).
    KillDominators {
        /// Number of dominators to crash.
        count: usize,
    },
    /// Every node fails independently with probability `p` (battery
    /// exhaustion model).
    IidNodeFailure {
        /// Per-node failure probability in `[0, 1]`.
        prob: f64,
    },
    /// All nodes inside a random disaster disk die at once (fire, jamming,
    /// flooding). Requires geometry — evaluate with
    /// [`regional_survivability`]; passing it to [`survivability`] returns
    /// [`KmdsError::UnsupportedFailureModel`].
    Region {
        /// Radius of the disaster disk.
        radius: f64,
    },
}

/// Aggregated survivability statistics over the trials.
#[derive(Debug, Clone, PartialEq)]
pub struct SurvivabilityReport {
    /// The failure model evaluated.
    pub model: FailureModel,
    /// Number of Monte-Carlo trials.
    pub trials: u32,
    /// Mean fraction of surviving non-set nodes that still have ≥ 1 alive
    /// dominator ("connected to the backbone").
    pub mean_covered_fraction: f64,
    /// Worst (minimum) such fraction over the trials.
    pub min_covered_fraction: f64,
    /// Mean fraction of surviving non-set nodes still *fully* `k`-covered.
    pub mean_fully_covered_fraction: f64,
    /// Mean surviving coverage (alive dominators per surviving non-set
    /// node).
    pub mean_residual_coverage: f64,
    /// Regional failures only: mean covered fraction among the *at-risk*
    /// survivors — those within one communication radius of the disaster
    /// boundary, whose neighborhoods were partially destroyed. `None` for
    /// the non-geometric models (where every node is equally at risk).
    pub mean_at_risk_covered_fraction: Option<f64>,
}

/// Runs `trials` failure experiments against `set` and reports residual
/// coverage among the *surviving* non-set nodes.
///
/// # Errors
///
/// Returns [`KmdsError::UnsupportedFailureModel`] for
/// [`FailureModel::Region`], which needs node positions — use
/// [`regional_survivability`] instead. Returns [`KmdsError::ZeroTrials`]
/// when `trials == 0`: the aggregates would be empty folds (pre-fix code
/// reported `min_covered_fraction = +∞`).
///
/// # Panics
///
/// Panics if the set universe mismatches the graph, if
/// `KillDominators.count` exceeds the set size, or if `prob ∉ [0, 1]`.
pub fn survivability(
    inst: &Instance<'_>,
    set: &DominatingSet,
    model: FailureModel,
    trials: u32,
    seed: u64,
) -> Result<SurvivabilityReport, KmdsError> {
    if let FailureModel::Region { .. } = model {
        return Err(KmdsError::UnsupportedFailureModel {
            reason: "Region failures need geometry — use regional_survivability",
        });
    }
    if trials == 0 {
        return Err(KmdsError::ZeroTrials {
            what: "survivability",
        });
    }
    let g = inst.graph();
    assert_eq!(set.universe(), g.node_count(), "set universe mismatch");
    if let FailureModel::KillDominators { count } = model {
        assert!(
            count <= set.len(),
            "cannot kill {count} of {} dominators",
            set.len()
        );
    }
    if let FailureModel::IidNodeFailure { prob } = model {
        assert!((0.0..=1.0).contains(&prob), "prob must be in [0, 1]");
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let members: Vec<NodeId> = set.ids().collect();
    let mut covered_fraction = Vec::with_capacity(trials as usize);
    let mut fully_fraction = Vec::with_capacity(trials as usize);
    let mut residual = Vec::with_capacity(trials as usize);
    for _ in 0..trials {
        let mut dead = vec![false; g.node_count()];
        match model {
            FailureModel::KillDominators { count } => {
                let mut pool = members.clone();
                pool.shuffle(&mut rng);
                for &v in pool.iter().take(count) {
                    dead[v.index()] = true;
                }
            }
            FailureModel::IidNodeFailure { prob } => {
                for d in dead.iter_mut() {
                    *d = rng.random::<f64>() < prob;
                }
            }
            FailureModel::Region { .. } => {
                unreachable!("Region was rejected before the trial loop");
            }
        }
        let mut clients = 0usize;
        let mut covered = 0usize;
        let mut fully = 0usize;
        let mut cov_sum = 0usize;
        for v in g.nodes() {
            if set.contains(v) || dead[v.index()] {
                continue; // only surviving non-set nodes are "clients"
            }
            clients += 1;
            let alive_doms = g
                .neighbors(v)
                .iter()
                .filter(|&&w| set.contains(w) && !dead[w.index()])
                .count();
            cov_sum += alive_doms;
            if alive_doms >= 1 {
                covered += 1;
            }
            if alive_doms as u32 >= inst.demand(v) {
                fully += 1;
            }
        }
        if clients == 0 {
            covered_fraction.push(1.0);
            fully_fraction.push(1.0);
            residual.push(0.0);
        } else {
            covered_fraction.push(covered as f64 / clients as f64);
            fully_fraction.push(fully as f64 / clients as f64);
            residual.push(cov_sum as f64 / clients as f64);
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    Ok(SurvivabilityReport {
        model,
        trials,
        mean_covered_fraction: mean(&covered_fraction),
        min_covered_fraction: covered_fraction
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min),
        mean_fully_covered_fraction: mean(&fully_fraction),
        mean_residual_coverage: mean(&residual),
        mean_at_risk_covered_fraction: None,
    })
}

/// Correlated **regional** failure for geometric deployments: all nodes
/// within a random disaster disk of the given radius die at once (fire,
/// jamming, flooding — failures in sensor fields are rarely independent).
///
/// Reports the same statistics as [`survivability`], computed over
/// `trials` random disaster centers drawn uniformly from the deployment's
/// bounding box. Note the honest caveat this experiment surfaces: k-fold
/// redundancy protects against *scattered* failures, but a disaster disk
/// of radius ≥ 2·(communication radius) kills every dominator a victim
/// could have had, so coverage of nodes near the disaster edge — not
/// inside it, those are dead — is what improves with `k`.
///
/// # Errors
///
/// Returns [`KmdsError::ZeroTrials`] when `trials == 0` — the aggregates
/// would be empty folds.
///
/// # Panics
///
/// Panics if the set universe mismatches the UDG or `disaster_radius` is
/// negative/non-finite.
pub fn regional_survivability(
    udg: &ftclust_graphs::UnitDiskGraph,
    inst: &Instance<'_>,
    set: &DominatingSet,
    disaster_radius: f64,
    trials: u32,
    seed: u64,
) -> Result<SurvivabilityReport, KmdsError> {
    if trials == 0 {
        return Err(KmdsError::ZeroTrials {
            what: "regional_survivability",
        });
    }
    let g = inst.graph();
    assert_eq!(set.universe(), udg.node_count(), "set universe mismatch");
    assert!(
        disaster_radius.is_finite() && disaster_radius >= 0.0,
        "disaster radius must be non-negative"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let (lo, hi) = udg.bounding_box().unwrap_or((
        ftclust_geometry::Point::ORIGIN,
        ftclust_geometry::Point::ORIGIN,
    ));
    let mut covered_fraction = Vec::with_capacity(trials as usize);
    let mut fully_fraction = Vec::with_capacity(trials as usize);
    let mut residual = Vec::with_capacity(trials as usize);
    let mut at_risk_fraction = Vec::with_capacity(trials as usize);
    for _ in 0..trials {
        let center = ftclust_geometry::Point::new(
            rng.random_range(lo.x..=hi.x.max(lo.x + f64::EPSILON)),
            rng.random_range(lo.y..=hi.y.max(lo.y + f64::EPSILON)),
        );
        let r_sq = disaster_radius * disaster_radius;
        let dead: Vec<bool> = udg
            .positions()
            .iter()
            .map(|p| p.dist_sq(center) <= r_sq)
            .collect();
        let mut clients = 0usize;
        let mut covered = 0usize;
        let mut fully = 0usize;
        let mut cov_sum = 0usize;
        let mut at_risk = 0usize;
        let mut at_risk_covered = 0usize;
        let risk_band = disaster_radius + udg.radius();
        for v in g.nodes() {
            if set.contains(v) || dead[v.index()] {
                continue;
            }
            clients += 1;
            let alive = g
                .neighbors(v)
                .iter()
                .filter(|&&w| set.contains(w) && !dead[w.index()])
                .count();
            cov_sum += alive;
            if alive >= 1 {
                covered += 1;
            }
            if alive as u32 >= inst.demand(v) {
                fully += 1;
            }
            // Survivors close enough to the disaster that part of their
            // neighborhood may have burned.
            if udg.position(v).dist(center) <= risk_band {
                at_risk += 1;
                if alive >= 1 {
                    at_risk_covered += 1;
                }
            }
        }
        if clients == 0 {
            covered_fraction.push(1.0);
            fully_fraction.push(1.0);
            residual.push(0.0);
        } else {
            covered_fraction.push(covered as f64 / clients as f64);
            fully_fraction.push(fully as f64 / clients as f64);
            residual.push(cov_sum as f64 / clients as f64);
        }
        at_risk_fraction.push(if at_risk == 0 {
            1.0
        } else {
            at_risk_covered as f64 / at_risk as f64
        });
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    Ok(SurvivabilityReport {
        model: FailureModel::Region {
            radius: disaster_radius,
        },
        trials,
        mean_covered_fraction: mean(&covered_fraction),
        min_covered_fraction: covered_fraction
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min),
        mean_fully_covered_fraction: mean(&fully_fraction),
        mean_residual_coverage: mean(&residual),
        mean_at_risk_covered_fraction: Some(mean(&at_risk_fraction)),
    })
}

/// The deterministic guarantee: for a strict k-fold dominating set, after
/// **any** failure of fewer than `k` dominators, every surviving non-set
/// node still has an alive dominator. Verified exhaustively for small sets
/// and by sampling otherwise; returns `false` iff a counterexample was
/// found.
pub fn guarantee_holds(
    inst: &Instance<'_>,
    set: &DominatingSet,
    k: u32,
    samples: u32,
    seed: u64,
) -> bool {
    if k == 0 {
        return true;
    }
    debug_assert!(crate::validate::is_k_dominating_instance(
        inst,
        set,
        Semantics::Strict
    ));
    let g = inst.graph();
    let members: Vec<NodeId> = set.ids().collect();
    let kill = (k - 1) as usize;
    if kill == 0 {
        return true;
    }
    let check = |dead: &[NodeId]| -> bool {
        let dead_set: Vec<bool> = {
            let mut d = vec![false; g.node_count()];
            for &v in dead {
                d[v.index()] = true;
            }
            d
        };
        g.nodes().all(|v| {
            if set.contains(v) || inst.demand(v) == 0 {
                return true;
            }
            g.neighbors(v)
                .iter()
                .any(|&w| set.contains(w) && !dead_set[w.index()])
        })
    };
    // Exhaustive for tiny cases, sampled otherwise.
    if members.len() <= 16 && kill <= 2 {
        match kill {
            1 => members.iter().all(|&a| check(&[a])),
            _ => members
                .iter()
                .enumerate()
                .all(|(i, &a)| members[i + 1..].iter().all(|&b| check(&[a, b]))),
        }
    } else {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..samples).all(|_| {
            let mut pool = members.clone();
            pool.shuffle(&mut rng);
            check(&pool[..kill.min(pool.len())])
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::udg::UdgAlgorithm;
    use crate::validate::is_k_dominating;
    use ftclust_graphs::generators;

    #[test]
    fn guarantee_holds_for_udg_outputs() {
        for k in [1u32, 2, 3] {
            let udg = generators::random_udg(200, 10.0, 1.0, k as u64);
            let run = UdgAlgorithm::new(k).seed(2).run(&udg).unwrap();
            assert!(is_k_dominating(udg.graph(), &run.set, k, Semantics::Strict));
            let inst = Instance::uniform_clamped(udg.graph(), k);
            assert!(guarantee_holds(&inst, &run.set, k, 200, 7), "k={k}");
        }
    }

    #[test]
    fn higher_k_survives_better() {
        let udg = generators::random_udg(300, 12.0, 1.0, 5);
        let inst = Instance::uniform_clamped(udg.graph(), 1);
        let mut prev = -1.0f64;
        for k in [1u32, 2, 4] {
            let run = UdgAlgorithm::new(k).seed(1).run(&udg).unwrap();
            let rep = survivability(
                &inst,
                &run.set,
                FailureModel::IidNodeFailure { prob: 0.3 },
                50,
                3,
            )
            .unwrap();
            assert!(
                rep.mean_covered_fraction >= prev - 0.02,
                "coverage should improve with k: k={k}, {} vs {prev}",
                rep.mean_covered_fraction
            );
            prev = rep.mean_covered_fraction;
        }
        assert!(
            prev > 0.9,
            "4-fold set should survive 30% failures well: {prev}"
        );
    }

    #[test]
    fn kill_fewer_than_k_keeps_full_domination() {
        let udg = generators::random_udg(150, 9.0, 1.0, 8);
        let k = 3u32;
        let run = UdgAlgorithm::new(k).seed(0).run(&udg).unwrap();
        let inst = Instance::uniform_clamped(udg.graph(), 1); // demand 1 after failures
        let rep = survivability(
            &inst,
            &run.set,
            FailureModel::KillDominators {
                count: (k - 1) as usize,
            },
            30,
            1,
        )
        .unwrap();
        assert_eq!(
            rep.min_covered_fraction, 1.0,
            "killing k−1 dominators must never uncover"
        );
    }

    #[test]
    fn report_fields_are_consistent() {
        let g = generators::gnp(50, 0.15, 3);
        let inst = Instance::uniform_clamped(&g, 2);
        let set = crate::baselines::greedy_kmds(&inst, Semantics::CoverSelf);
        let rep = survivability(
            &inst,
            &set,
            FailureModel::IidNodeFailure { prob: 0.2 },
            20,
            4,
        )
        .unwrap();
        assert!(rep.mean_covered_fraction >= rep.mean_fully_covered_fraction - 1e-12);
        assert!(rep.min_covered_fraction <= rep.mean_covered_fraction + 1e-12);
        assert_eq!(rep.trials, 20);
    }

    #[test]
    fn regional_failures_respect_geometry() {
        let udg = generators::random_udg_in_square(600, 12.0, 1.0, 6);
        let inst = Instance::uniform_clamped(udg.graph(), 1);
        let run = UdgAlgorithm::new(3).seed(2).run(&udg).unwrap();
        // A zero-radius disaster kills (almost) nobody.
        let none = regional_survivability(&udg, &inst, &run.set, 0.0, 10, 1).unwrap();
        assert!(none.mean_covered_fraction > 0.999);
        // A big disaster hurts more than a small one.
        let small = regional_survivability(&udg, &inst, &run.set, 1.0, 40, 2).unwrap();
        let big = regional_survivability(&udg, &inst, &run.set, 4.0, 40, 2).unwrap();
        assert!(big.mean_covered_fraction <= small.mean_covered_fraction + 1e-9);
        assert_eq!(big.model, FailureModel::Region { radius: 4.0 });
        // More redundancy helps the survivors near the disaster edge.
        let run1 = UdgAlgorithm::new(1).seed(2).run(&udg).unwrap();
        let k1 = regional_survivability(&udg, &inst, &run1.set, 2.0, 40, 3).unwrap();
        let k3 = regional_survivability(&udg, &inst, &run.set, 2.0, 40, 3).unwrap();
        assert!(k3.mean_covered_fraction >= k1.mean_covered_fraction - 0.02);
    }

    #[test]
    fn zero_trials_is_rejected_not_infinite() {
        // Pre-fix, both entry points folded the empty trial list from
        // +∞ and reported `min_covered_fraction = inf` beside `mean = 0`.
        let udg = generators::random_udg_in_square(60, 8.0, 1.0, 9);
        let inst = Instance::uniform_clamped(udg.graph(), 1);
        let run = UdgAlgorithm::new(2).seed(1).run(&udg).unwrap();
        let err = survivability(
            &inst,
            &run.set,
            FailureModel::IidNodeFailure { prob: 0.1 },
            0,
            5,
        )
        .unwrap_err();
        assert!(
            matches!(
                err,
                KmdsError::ZeroTrials {
                    what: "survivability"
                }
            ),
            "unexpected error: {err}"
        );
        let err = regional_survivability(&udg, &inst, &run.set, 1.0, 0, 5).unwrap_err();
        assert!(
            matches!(
                err,
                KmdsError::ZeroTrials {
                    what: "regional_survivability"
                }
            ),
            "unexpected error: {err}"
        );
        assert!(err.to_string().contains("at least one trial"));
    }

    #[test]
    fn region_model_rejected_by_graph_only_api() {
        let g = generators::gnp(10, 0.5, 1);
        let inst = Instance::uniform_clamped(&g, 1);
        let set = crate::baselines::greedy_kmds(&inst, Semantics::CoverSelf);
        let err =
            survivability(&inst, &set, FailureModel::Region { radius: 1.0 }, 1, 0).unwrap_err();
        assert!(
            matches!(err, KmdsError::UnsupportedFailureModel { .. }),
            "unexpected error: {err}"
        );
        assert!(err.to_string().contains("regional_survivability"));
    }

    #[test]
    fn zero_failure_probability_changes_nothing() {
        let g = generators::gnp(40, 0.2, 2);
        let inst = Instance::uniform_clamped(&g, 2);
        let set = crate::baselines::greedy_kmds(&inst, Semantics::CoverSelf);
        let rep = survivability(
            &inst,
            &set,
            FailureModel::IidNodeFailure { prob: 0.0 },
            5,
            0,
        )
        .unwrap();
        assert_eq!(rep.min_covered_fraction, 1.0);
        assert_eq!(rep.mean_fully_covered_fraction, 1.0);
    }
}
