//! Distributed coverage repair: restoring strict k-domination among the
//! survivors after a churn epoch.
//!
//! The paper's Section 1 motivation is that a k-fold dominating set keeps
//! clusters covered *when nodes fail*. This module supplies the missing
//! maintenance half of that story: after nodes crash (and possibly
//! recover — see [`ftclust_netsim::ChurnPlan`]), [`repair_coverage`]
//! re-establishes the invariant that every surviving non-member has at
//! least `k` surviving members among its neighbors
//! ([`Semantics::Strict`] on the surviving subgraph).
//!
//! # Protocol
//!
//! The repair is purely local, structured as one **detection round**
//! followed by bounded **re-election iterations** of three rounds each,
//! reusing the promotion machinery of Algorithm 3 Part II
//! (`select_promotions`, so the healed set inherits the same promotion
//! rules and randomness discipline):
//!
//! 1. *Detection* — every survivor broadcasts a heartbeat; a node whose
//!    dominator count among responders falls below `k` becomes **needy**
//!    with deficit `k − c(v)`.
//! 2. *Deficit broadcast* — needy nodes announce their deficit to their
//!    surviving neighbors.
//! 3. *Re-election* — a needy node with fewer than `k` surviving
//!    neighbors, or with no surviving member neighbor at all, promotes
//!    **itself** (members are exempt under strict semantics, and no
//!    neighborhood subset could ever supply its `k` dominators);
//!    meanwhile every surviving member promotes up to `k` of its needy
//!    neighbors, exactly as in Part II.
//! 4. *Announcement* — new members announce themselves; coverage counts
//!    update and the loop repeats while anyone is still needy.
//!
//! # Engine and protocol
//!
//! [`repair_coverage`] is the analytic engine: it evaluates the rounds
//! directly on shared state (the fast path for sweeps).
//! [`run_repair_protocol`] executes the same rounds as real message
//! passing on [`ftclust_netsim`], and [`run_repair_protocol_lossy`] does
//! so over **lossy links** through the reliable transport of
//! [`ftclust_netsim::transport`] — all three produce the identical healed
//! set, additions and iteration count for the same [`RepairConfig`].
//!
//! # Continuous mode
//!
//! The epoch-based entry points above heal once, *after* a churn epoch
//! has ended. [`run_repair_continuous`] instead runs the repair as a
//! standing service **while** churn and adversarial delivery faults are
//! live: every 4-round cycle probes coverage with membership beacons,
//! records each node's observed deficit, and immediately re-elects and
//! joins replacements. The per-cycle deficit series feeds
//! [`ftclust_netsim::monitor::HealthMonitor`], which derives detection
//! latency and mean time to repair per fault burst. Continuous mode runs
//! *without* the reliable transport — ARQ cannot mask crash churn (a
//! frame addressed to a crashed node exhausts its retransmit budget) —
//! so the protocol itself is loss-tolerant: a lost or corrupted beacon
//! undercounts coverage, which can only cause a spurious *extra*
//! promotion, never a missed deficit.
//!
//! # Locality and termination
//!
//! Membership only ever grows, so coverage is monotone and the needy set
//! only shrinks. Every iteration with a non-empty needy set adds at least
//! one member (a needy node either self-elects or has a member neighbor,
//! and a member adjacent to needy nodes always promotes at least one), so
//! the loop terminates within `|needy|` iterations — in practice a small
//! constant. If the pre-failure set strictly k-dominated the *full*
//! graph, every needy node lost a dominator and is therefore a graph
//! neighbor of a failed node, and every added node is needy — so repair
//! **never touches a node farther than 2 hops from a failure** (the
//! `strict-invariants` feature audits both this and the re-validation of
//! the healed set).
//!
//! # Example
//!
//! ```
//! use ftclust_core::repair::{repair_coverage, RepairConfig};
//! use ftclust_core::udg::UdgAlgorithm;
//! use ftclust_core::validate::{is_k_dominating, Semantics};
//! use ftclust_graphs::generators;
//!
//! let udg = generators::random_udg(300, 10.0, 1.0, 7);
//! let run = UdgAlgorithm::new(2).seed(1).run(&udg)?;
//! // Kill three members, then heal.
//! let mut alive = vec![true; udg.node_count()];
//! for v in run.set.ids().take(3) {
//!     alive[v.index()] = false;
//! }
//! let out = repair_coverage(udg.graph(), &run.set, &alive, 2, &RepairConfig::new(9))?;
//! let keep: Vec<_> = udg.graph().nodes().filter(|v| alive[v.index()]).collect();
//! let (sub, old_ids) = udg.graph().induced_subgraph(&keep);
//! let survivors = ftclust_core::DominatingSet::from_ids(
//!     sub.node_count(),
//!     old_ids.iter().enumerate().filter(|(_, old)| out.set.contains(**old))
//!         .map(|(new, _)| ftclust_graphs::NodeId::new(new as u32)),
//! );
//! assert!(is_k_dominating(&sub, &survivors, 2, Semantics::Strict));
//! # Ok::<(), ftclust_core::KmdsError>(())
//! ```

use crate::bitset::{coverage_counts, BitSet};
use crate::udg::PromotionRule;
use crate::{DominatingSet, KmdsError};
use ftclust_graphs::{Graph, NodeId};
use ftclust_netsim::exec::{completed_iterations, Executor, Phase, Stack};
use ftclust_netsim::monitor::HealthMonitor;
use ftclust_netsim::transport::TransportConfig;
use ftclust_netsim::{
    bits_for_ids, node_rng, ChurnPlan, Context, Control, Envelope, EventLog, Metrics, NodeLogic,
    Payload, Topology,
};
use ftclust_par as par;
use rand::rngs::StdRng;

/// Wire messages of the repair protocol. All `O(log k)` bits or smaller —
/// repair stays inside the paper's small-message model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairMsg {
    /// Detection-round liveness beacon.
    Heartbeat,
    /// Continuous-mode probe beacon: liveness plus current membership,
    /// so receivers can measure their live coverage every cycle (see
    /// [`run_repair_continuous`]).
    Beacon {
        /// Whether the sender is currently in the dominating set.
        member: bool,
    },
    /// "I am needy": the sender's current surviving-dominator count
    /// (`< k`; needed by the `MostDeficient` promotion rule).
    Deficit {
        /// Surviving members currently covering the sender.
        cov: u32,
    },
    /// Promotion order from a member to a needy neighbor.
    Promote,
    /// New-member announcement (self-elected or promoted).
    Join,
}

impl Payload for RepairMsg {
    fn bit_size(&self) -> usize {
        match self {
            RepairMsg::Heartbeat | RepairMsg::Promote | RepairMsg::Join => 1,
            RepairMsg::Beacon { .. } => 2,
            RepairMsg::Deficit { cov } => 1 + bits_for_ids(*cov as usize + 2),
        }
    }
}

/// Configuration of a repair run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepairConfig {
    /// Master seed for the per-node random streams (only consumed by
    /// [`PromotionRule::Random`]).
    pub seed: u64,
    /// How members pick which needy neighbors to promote.
    pub rule: PromotionRule,
    /// Defensive cap on re-election iterations; the progress argument in
    /// the [module docs](self) bounds the true count by the number of
    /// initially needy nodes.
    pub max_iterations: u64,
}

impl RepairConfig {
    /// A default-rule configuration with the given seed.
    pub fn new(seed: u64) -> Self {
        RepairConfig {
            seed,
            rule: PromotionRule::default(),
            max_iterations: 10_000,
        }
    }

    /// Sets the promotion rule.
    pub fn rule(mut self, rule: PromotionRule) -> Self {
        self.rule = rule;
        self
    }
}

/// Result of a coverage repair.
#[derive(Debug, Clone, PartialEq)]
pub struct RepairOutcome {
    /// The healed set over the full node universe. Dead members are
    /// pruned; all additions are surviving nodes.
    pub set: DominatingSet,
    /// Nodes added by the repair (self-elected or promoted), ascending.
    pub added: Vec<NodeId>,
    /// Re-election iterations executed (0 if nothing was needy).
    pub iterations: u32,
    /// Protocol rounds: 1 detection round + 3 per iteration.
    pub rounds: u64,
    /// Messages the protocol would send (heartbeats, deficit broadcasts,
    /// promotions, join announcements).
    pub messages: u64,
    /// Total bits across those messages ([`RepairMsg`] sizes).
    pub message_bits: u64,
    /// Largest coverage deficit `k − c(v)` observed at detection time.
    pub peak_deficit: u32,
    /// Number of nodes below target coverage at detection time.
    pub deficit_nodes: usize,
}

/// One worker's contiguous block of a re-election iteration: the RNG
/// streams it owns plus a local list of promotion targets, OR-merged
/// afterwards (commutative) — same discipline as Algorithm 3 Part II, so
/// the outcome is identical at every thread count.
struct RepairShard<'s> {
    start: usize,
    rngs: &'s mut [StdRng],
    targets: Vec<NodeId>,
    /// Per-member needy-neighbor list, reused across the shard's members
    /// so an iteration allocates at most one list per worker.
    scratch: Vec<NodeId>,
}

/// Repairs `set` after failures so that the survivors again form a strict
/// k-fold dominating set of the surviving subgraph.
///
/// `alive[v]` tells whether node `v` survived the churn epoch; dead
/// members are pruned from the set and only surviving nodes are added.
/// See the [module docs](self) for the protocol, its cost model, and the
/// locality guarantee.
///
/// # Errors
///
/// Returns [`KmdsError::IterationLimit`] if an iteration makes no
/// progress or `max_iterations` is exhausted — impossible by the progress
/// argument in the module docs; checked defensively.
///
/// # Panics
///
/// Panics if `alive.len()` or the set universe mismatch the graph, or if
/// `k == 0`.
pub fn repair_coverage(
    g: &Graph,
    set: &DominatingSet,
    alive: &[bool],
    k: u32,
    cfg: &RepairConfig,
) -> Result<RepairOutcome, KmdsError> {
    let n = g.node_count();
    assert_eq!(alive.len(), n, "liveness mask length mismatch");
    assert_eq!(set.universe(), n, "set universe mismatch");
    assert!(k >= 1, "k must be at least 1");

    // Surviving membership: dead members are gone.
    let mut member = BitSet::from_fn_par(n, |i| alive[i] && set.contains(NodeId::new(i as u32)));
    let alive_deg: Vec<u32> = par::par_map_range(n, |i| {
        g.neighbors(NodeId::new(i as u32))
            .iter()
            .filter(|w| alive[w.index()])
            .count() as u32
    });

    let mut messages = 0u64;
    let mut message_bits = 0u64;
    // Detection round: every survivor beacons to all its graph neighbors
    // (it cannot yet know which of them are alive).
    let heartbeat = RepairMsg::Heartbeat.bit_size() as u64;
    for i in 0..n {
        if alive[i] {
            let deg = g.degree(NodeId::new(i as u32)) as u64;
            messages += deg;
            message_bits += deg * heartbeat;
        }
    }
    let mut rounds = 1u64;

    let mut rngs: Vec<StdRng> =
        par::par_map_range(n, |i| node_rng(cfg.seed, NodeId::new(i as u32)));
    let mut added: Vec<NodeId> = Vec::new();
    let mut peak_deficit = 0u32;
    let mut deficit_nodes = 0usize;
    let mut iterations = 0u32;
    loop {
        let cov = coverage_counts(g, &member);
        let needy = BitSet::from_fn_par(n, |i| alive[i] && !member.get(i) && cov[i] < k);
        if iterations == 0 {
            deficit_nodes = needy.count();
            peak_deficit = needy.iter_ones().map(|i| k - cov[i]).max().unwrap_or(0);
        }
        if !needy.any() {
            break;
        }
        if u64::from(iterations) >= cfg.max_iterations {
            return Err(KmdsError::IterationLimit {
                stage: "coverage repair",
                limit: cfg.max_iterations,
            });
        }
        iterations += 1;
        rounds += 3;
        // Round 1 of the iteration: deficit broadcasts to surviving
        // neighbors.
        for i in needy.iter_ones() {
            let deg = u64::from(alive_deg[i]);
            messages += deg;
            message_bits += deg * RepairMsg::Deficit { cov: cov[i] }.bit_size() as u64;
        }
        // Round 2: self-elections and member promotions. Each member
        // draws only from its own stream; targets are OR-merged after the
        // parallel part (commutative), matching Part II exactly.
        let self_elect = BitSet::from_fn_par(n, |i| {
            needy.get(i)
                && (alive_deg[i] < k
                    || !g
                        .neighbors(NodeId::new(i as u32))
                        .iter()
                        .any(|w| member.get(w.index())))
        });
        let mut shards: Vec<RepairShard<'_>> = Vec::new();
        let mut rngs_rest = &mut rngs[..];
        for r in par::split_ranges(n, par::num_threads()) {
            let (rngs_here, rngs_next) = rngs_rest.split_at_mut(r.len());
            rngs_rest = rngs_next;
            shards.push(RepairShard {
                start: r.start,
                rngs: rngs_here,
                targets: Vec::new(),
                scratch: Vec::new(),
            });
        }
        par::par_for_each_mut(&mut shards, |_, s| {
            for j in 0..s.rngs.len() {
                let i = s.start + j;
                if !member.get(i) {
                    continue;
                }
                let v = NodeId::new(i as u32);
                s.scratch.clear();
                s.scratch.extend(
                    g.neighbors(v)
                        .iter()
                        .copied()
                        .filter(|w| needy.get(w.index())),
                );
                if s.scratch.is_empty() {
                    continue;
                }
                let picks = crate::udg::select_promotions(
                    &s.scratch,
                    |w| cov[w.index()],
                    k as usize,
                    cfg.rule,
                    &mut s.rngs[j],
                );
                s.targets.extend(picks);
            }
        });
        let mut joins = self_elect;
        let mut promote_msgs = 0u64;
        for s in &shards {
            promote_msgs += s.targets.len() as u64;
            for w in &s.targets {
                joins.insert(w.index());
            }
        }
        messages += promote_msgs;
        message_bits += promote_msgs * RepairMsg::Promote.bit_size() as u64;
        if !joins.any_outside(&member) {
            return Err(KmdsError::IterationLimit {
                stage: "coverage repair",
                limit: u64::from(iterations),
            });
        }
        // Round 3: join announcements from the new members.
        for i in joins.iter_ones() {
            if !member.get(i) {
                member.insert(i);
                added.push(NodeId::new(i as u32));
                let deg = u64::from(alive_deg[i]);
                messages += deg;
                message_bits += deg * RepairMsg::Join.bit_size() as u64;
            }
        }
    }
    added.sort_unstable();
    let outcome = RepairOutcome {
        set: DominatingSet::from_members(member.to_bools()),
        added,
        iterations,
        rounds,
        messages,
        message_bits,
        peak_deficit,
        deficit_nodes,
    };
    #[cfg(feature = "strict-invariants")]
    crate::audit::repair_postconditions(g, set, alive, k, &outcome.set, &outcome.added);
    Ok(outcome)
}

/// Maps a full-universe set onto the subgraph induced by the `alive`
/// nodes, for validating repaired sets on the surviving topology.
///
/// Returns the surviving subgraph and the corresponding set in its id
/// space.
///
/// # Panics
///
/// Panics if `alive.len()` or the set universe mismatch the graph.
pub fn surviving_instance(
    g: &Graph,
    set: &DominatingSet,
    alive: &[bool],
) -> (Graph, DominatingSet) {
    let n = g.node_count();
    assert_eq!(alive.len(), n, "liveness mask length mismatch");
    assert_eq!(set.universe(), n, "set universe mismatch");
    let keep: Vec<NodeId> = g.nodes().filter(|v| alive[v.index()]).collect();
    let (sub, old_of_new) = g.induced_subgraph(&keep);
    let members = old_of_new.iter().map(|&old| set.contains(old)).collect();
    (sub, DominatingSet::from_members(members))
}

/// Per-node state of the repair protocol on the **surviving subgraph** —
/// the message-passing twin of [`repair_coverage`], seed-for-seed
/// identical in its healed set, additions and iteration count (message
/// counts differ: the engine also accounts heartbeats addressed to dead
/// neighbors, which the induced subgraph has no edges for).
///
/// Nodes know, from before the churn epoch, which of their neighbors were
/// members (`neighbor_member`) — set membership is established knowledge
/// by the time repair runs — and observe survival through the detection
/// round. Each node draws promotions from its own stream keyed by its
/// **original** (pre-churn) identifier, exactly like the engine.
#[derive(Debug)]
pub struct RepairNode {
    k: u32,
    rule: PromotionRule,
    /// This node's private stream, `node_rng(seed, original_id)`.
    rng: StdRng,
    member: bool,
    /// Membership of each surviving neighbor, aligned with the sorted
    /// subgraph neighbor list; updated by `Join` announcements.
    neighbor_member: Vec<bool>,
    /// Members in the closed neighborhood (the engine's `cov`).
    cov: u32,
    my_needy: bool,
    pending_join: bool,
    /// Whether this node was added by the repair.
    pub joined: bool,
    /// Coverage at detection time (for the deficit statistics).
    pub initial_cov: u32,
    /// Whether this node was needy at detection time.
    pub initial_needy: bool,
}

impl NodeLogic for RepairNode {
    type Payload = RepairMsg;

    fn on_round(
        &mut self,
        inbox: &[Envelope<RepairMsg>],
        ctx: &mut Context<'_, RepairMsg>,
    ) -> Control {
        let r = ctx.round();
        if r == 0 {
            // Detection round: every survivor beacons. On the induced
            // surviving subgraph every neighbor responds, so the beacon's
            // role is to confirm survival (and meter the detection cost).
            self.cov =
                u32::from(self.member) + self.neighbor_member.iter().filter(|&&m| m).count() as u32;
            ctx.broadcast(RepairMsg::Heartbeat);
            return Control::Continue;
        }
        match (r - 1) % 3 {
            0 => {
                // Deficit round: absorb the joins announced last
                // iteration, then announce the (updated) deficit.
                for e in inbox {
                    if let RepairMsg::Join = e.payload {
                        let Ok(pos) = ctx.neighbors().binary_search(&e.from) else {
                            unreachable!("inbox messages arrive only from neighbors");
                        };
                        self.neighbor_member[pos] = true;
                        self.cov += 1;
                    }
                }
                self.my_needy = !self.member && self.cov < self.k;
                if r == 1 {
                    self.initial_cov = self.cov;
                    self.initial_needy = self.my_needy;
                }
                if self.my_needy {
                    ctx.broadcast(RepairMsg::Deficit { cov: self.cov });
                }
                Control::Continue
            }
            1 => {
                // Re-election round: members promote needy neighbors;
                // structurally under-covered needy nodes promote
                // themselves; a node with nothing needy in sight is done.
                let needy: Vec<(NodeId, u32)> = inbox
                    .iter()
                    .filter_map(|e| match e.payload {
                        RepairMsg::Deficit { cov } => Some((e.from, cov)),
                        _ => None,
                    })
                    .collect();
                if self.member && !needy.is_empty() {
                    let ids: Vec<NodeId> = needy.iter().map(|&(v, _)| v).collect();
                    let cov_of = |v: NodeId| match needy.iter().find(|&&(w, _)| w == v) {
                        Some(&(_, c)) => c,
                        None => unreachable!("promotion candidates come from `needy`"),
                    };
                    let chosen = crate::udg::select_promotions(
                        &ids,
                        cov_of,
                        self.k as usize,
                        self.rule,
                        &mut self.rng,
                    );
                    for w in chosen {
                        ctx.send(w, RepairMsg::Promote);
                    }
                }
                if self.my_needy
                    && (ctx.degree() < self.k as usize || !self.neighbor_member.iter().any(|&m| m))
                {
                    self.pending_join = true;
                }
                if !self.my_needy && needy.is_empty() {
                    // Neediness only shrinks, so nothing around this node
                    // can ever change again.
                    Control::Halt
                } else {
                    Control::Continue
                }
            }
            _ => {
                // Join round: promoted and self-elected nodes enter the
                // set and announce it.
                if inbox
                    .iter()
                    .any(|e| matches!(e.payload, RepairMsg::Promote))
                {
                    self.pending_join = true;
                }
                if self.pending_join && !self.member {
                    self.member = true;
                    self.joined = true;
                    self.cov += 1;
                    ctx.broadcast(RepairMsg::Join);
                }
                self.pending_join = false;
                Control::Continue
            }
        }
    }
}

/// Result of a metered repair-protocol execution
/// ([`run_repair_protocol`] / [`run_repair_protocol_lossy`]).
#[derive(Debug, Clone, PartialEq)]
pub struct RepairProtocolRun {
    /// The healed set over the **full** node universe — identical to
    /// [`repair_coverage`]'s.
    pub set: DominatingSet,
    /// Nodes added by the repair, in original ids, ascending — identical
    /// to the engine's.
    pub added: Vec<NodeId>,
    /// Re-election iterations executed — identical to the engine's.
    pub iterations: u32,
    /// Largest deficit `k − c(v)` observed at detection time.
    pub peak_deficit: u32,
    /// Nodes below target coverage at detection time.
    pub deficit_nodes: usize,
    /// Measured communication metrics of the execution (unlike the
    /// engine's analytic counts, these include nothing for dead
    /// neighbors; under loss they include the transport overhead).
    pub metrics: Metrics,
}

/// Builds one node's protocol state for the surviving subgraph.
fn repair_node(
    sub: &Graph,
    old_of_new: &[NodeId],
    set: &DominatingSet,
    k: u32,
    cfg: &RepairConfig,
    v: NodeId,
) -> RepairNode {
    let old = old_of_new[v.index()];
    RepairNode {
        k,
        rule: cfg.rule,
        rng: node_rng(cfg.seed, old),
        member: set.contains(old),
        neighbor_member: sub
            .neighbors(v)
            .iter()
            .map(|&w| set.contains(old_of_new[w.index()]))
            .collect(),
        cov: 0,
        my_needy: false,
        pending_join: false,
        joined: false,
        initial_cov: 0,
        initial_needy: false,
    }
}

/// Maps the final per-node states back to the full universe.
fn assemble_repair(
    n_full: usize,
    old_of_new: &[NodeId],
    nodes: &[RepairNode],
    k: u32,
    logical_rounds: u64,
    metrics: Metrics,
) -> RepairProtocolRun {
    let mut members = vec![false; n_full];
    let mut added = Vec::new();
    let mut peak_deficit = 0u32;
    let mut deficit_nodes = 0usize;
    for (node, &old) in nodes.iter().zip(old_of_new) {
        members[old.index()] = node.member;
        if node.joined {
            added.push(old);
        }
        if node.initial_needy {
            deficit_nodes += 1;
            peak_deficit = peak_deficit.max(k - node.initial_cov);
        }
    }
    added.sort_unstable();
    // Rounds: 1 detection, 3 per iteration, and a trailing no-op
    // iteration that halts in its second round (deficit silence, then
    // everyone halts) = 3·(iterations + 1) in total.
    let iterations = completed_iterations(logical_rounds, 1, 3, 2);
    RepairProtocolRun {
        set: DominatingSet::from_members(members),
        added,
        iterations,
        peak_deficit,
        deficit_nodes,
        metrics,
    }
}

/// The coverage repair's declarative span plan: the round-0 heartbeat
/// exchange runs under a `repair_heartbeat` span and every 3-round
/// repair iteration (deficit announcement, re-election, join) under
/// `repair_iter(j)`. Nodes halt in the re-election round (the second
/// round of an iteration), so the final iteration's span may cover fewer
/// than three executed rounds — stepping a quiescent network is a no-op
/// and records nothing.
fn repair_phases() -> Vec<Phase> {
    vec![
        Phase::span("repair_heartbeat", 1),
        Phase::repeat("repair_iter", 3),
    ]
}

/// Runs the coverage repair through the composable executor stack of
/// [`ftclust_netsim::exec`] on the surviving subgraph: the reliable
/// transport (loss masking), churn and tracing layers selected by
/// `stack` compose freely. This is the canonical driver —
/// [`run_repair_protocol`] and the historical `_lossy`/`_traced` entry
/// points are thin shims over it.
///
/// When the stack is traced, [`EventLog::rollups`] shows how the repair
/// cost is spread over iterations versus detection via the plan above.
/// When the transport is engaged, drops and outage windows add metered
/// retransmissions but leave the healed set, additions and iteration
/// count seed-for-seed identical to [`repair_coverage`]'s (asserted by
/// the `strict-invariants` feature, which also reconciles the log's
/// rollups against the metrics).
///
/// # Errors
///
/// Returns [`KmdsError::Sim`] if the round budget is exceeded —
/// impossible by the progress argument in the [module docs](self) — or,
/// with the transport engaged, if loss exhausts a retransmit budget.
///
/// # Panics
///
/// Panics if `alive.len()` or the set universe mismatch the graph, or if
/// `k == 0`.
pub fn run_repair_stack(
    g: &Graph,
    set: &DominatingSet,
    alive: &[bool],
    k: u32,
    cfg: &RepairConfig,
    stack: Stack,
) -> Result<(RepairProtocolRun, Option<EventLog>), KmdsError> {
    let n = g.node_count();
    assert_eq!(alive.len(), n, "liveness mask length mismatch");
    assert_eq!(set.universe(), n, "set universe mismatch");
    assert!(k >= 1, "k must be at least 1");
    let keep: Vec<NodeId> = g.nodes().filter(|v| alive[v.index()]).collect();
    let (sub, old_of_new) = g.induced_subgraph(&keep);
    if sub.node_count() == 0 {
        let log = stack.is_traced().then(EventLog::new);
        return Ok((assemble_repair(n, &[], &[], k, 0, Metrics::default()), log));
    }
    let _transported = stack.engages_transport();
    let run = Executor::new(
        Topology::from_graph(&sub),
        |v| repair_node(&sub, &old_of_new, set, k, cfg, v),
        cfg.seed,
    )
    .stack(stack)
    .phases(repair_phases())
    .run(repair_round_budget(sub.node_count()))?;
    let out = assemble_repair(
        n,
        &old_of_new,
        &run.logics,
        k,
        run.logical_rounds,
        run.metrics,
    );
    #[cfg(feature = "strict-invariants")]
    {
        if _transported {
            let engine = repair_coverage(g, set, alive, k, cfg)?;
            crate::audit::loss_transparent(
                "coverage repair",
                &(
                    out.set.clone(),
                    out.added.clone(),
                    out.iterations,
                    out.peak_deficit,
                    out.deficit_nodes,
                ),
                &(
                    engine.set,
                    engine.added,
                    engine.iterations,
                    engine.peak_deficit,
                    engine.deficit_nodes,
                ),
            );
        }
        if let Some(log) = &run.log {
            if let Err(e) = log.reconcile(&out.metrics) {
                unreachable!("trace rollups diverged from Metrics: {e}");
            }
        }
    }
    Ok((out, run.log))
}

/// Runs the coverage repair as a **message-passing protocol** on the
/// surviving subgraph, metering real rounds, messages and bits. The
/// healed set, additions and iteration count are seed-for-seed identical
/// to [`repair_coverage`] with the same configuration (asserted in the
/// tests; the engine remains the fast path for sweeps).
///
/// # Errors
///
/// Returns [`KmdsError::Sim`] if the round budget is exceeded —
/// impossible by the progress argument in the [module docs](self).
///
/// # Panics
///
/// Panics if `alive.len()` or the set universe mismatch the graph, or if
/// `k == 0`.
pub fn run_repair_protocol(
    g: &Graph,
    set: &DominatingSet,
    alive: &[bool],
    k: u32,
    cfg: &RepairConfig,
) -> Result<RepairProtocolRun, KmdsError> {
    run_repair_stack(g, set, alive, k, cfg, Stack::new()).map(|(run, _)| run)
}

/// [`run_repair_protocol`] with a recorded [`EventLog`].
///
/// # Errors
///
/// As [`run_repair_protocol`].
///
/// # Panics
///
/// As [`run_repair_protocol`].
#[deprecated(note = "compose layers with `run_repair_stack(..., Stack::new().traced())`")]
pub fn run_repair_protocol_traced(
    // lint: driver-drift — deprecated shim delegating to the executor stack
    g: &Graph,
    set: &DominatingSet,
    alive: &[bool],
    k: u32,
    cfg: &RepairConfig,
) -> Result<(RepairProtocolRun, EventLog), KmdsError> {
    run_repair_stack(g, set, alive, k, cfg, Stack::new().traced())
        .map(|(run, log)| (run, log.unwrap_or_default()))
}

/// Logical-round budget of a repair run: detection + one three-round
/// iteration per survivor (the progress bound), a trailing no-op
/// iteration, and slack.
fn repair_round_budget(n_sub: usize) -> u64 {
    1 + 3 * (n_sub as u64 + 2) + 8
}

/// Runs the coverage repair over **lossy links** via the reliable
/// transport.
///
/// # Errors
///
/// Returns [`KmdsError::Sim`] if loss exhausts a retransmit budget or the
/// physical-round budget is exceeded.
///
/// # Panics
///
/// Panics if `alive.len()` or the set universe mismatch the graph, or if
/// `k == 0`.
#[deprecated(
    note = "compose layers with `run_repair_stack(..., Stack::new().churned(churn).transport(transport))`"
)]
pub fn run_repair_protocol_lossy(
    // lint: driver-drift — deprecated shim delegating to the executor stack
    g: &Graph,
    set: &DominatingSet,
    alive: &[bool],
    k: u32,
    cfg: &RepairConfig,
    churn: ChurnPlan,
    transport: TransportConfig,
) -> Result<RepairProtocolRun, KmdsError> {
    run_repair_stack(
        g,
        set,
        alive,
        k,
        cfg,
        Stack::new().churned(churn).transport(transport),
    )
    .map(|(run, _)| run)
}

/// Per-node state of the **continuous** repair service (see the
/// [module docs](self) on continuous mode). Runs on the *full* graph
/// under live churn — liveness is whatever the simulator's churn plan
/// says at each round — in repeating 4-round cycles:
///
/// 1. *Probe* (round `4c`) — every live node broadcasts a
///    [`RepairMsg::Beacon`] carrying its membership.
/// 2. *Deficit* (round `4c + 1`) — each node counts the **distinct**
///    member beacon senders it heard (network duplicates must not
///    double-count coverage), records its observed deficit for the
///    monitor, and broadcasts [`RepairMsg::Deficit`] if under-covered.
/// 3. *Re-election* (round `4c + 2`) — members promote up to `k` needy
///    neighbors; a needy node that heard no member beacon at all (or
///    whose degree is below `k`) marks itself for self-election.
/// 4. *Join* (round `4c + 3`) — promoted and self-elected nodes enter
///    the set; the next cycle's beacon announces it.
///
/// Loss, corruption and partitions make beacons *undercount* coverage,
/// which can only trigger spurious extra promotions — the deficit probe
/// never misses a real deficit for longer than one cycle. Jittered
/// messages landing outside their cycle phase are ignored (each phase
/// reads only its own message variant), i.e. treated as loss.
#[derive(Debug)]
pub struct ContinuousRepairNode {
    k: u32,
    rule: PromotionRule,
    rng: StdRng,
    member: bool,
    /// Rounds this node participates in: it halts at round
    /// `4 * cycles`.
    horizon_rounds: u64,
    /// Did the last probe deliver any member beacon?
    heard_member_beacon: bool,
    my_needy: bool,
    pending_join: bool,
    /// Whether this node joined the set during the run.
    pub joined: bool,
    /// Observed `(cycle, deficit)` pairs, one per deficit round this
    /// node was alive for (a down node skips cycles, so the cycle index
    /// is recorded explicitly).
    pub deficits: Vec<(u64, u32)>,
}

impl NodeLogic for ContinuousRepairNode {
    type Payload = RepairMsg;

    fn on_round(
        &mut self,
        inbox: &[Envelope<RepairMsg>],
        ctx: &mut Context<'_, RepairMsg>,
    ) -> Control {
        let r = ctx.round();
        if r >= self.horizon_rounds {
            return Control::Halt;
        }
        match r % 4 {
            0 => {
                ctx.broadcast(RepairMsg::Beacon {
                    member: self.member,
                });
                Control::Continue
            }
            1 => {
                // Coverage probe readout: distinct member beacon senders
                // only — the adversary may deliver duplicates, and a
                // duplicated beacon must not count as two dominators.
                let mut members: Vec<NodeId> = inbox
                    .iter()
                    .filter_map(|e| match e.payload {
                        RepairMsg::Beacon { member: true } => Some(e.from),
                        _ => None,
                    })
                    .collect();
                members.sort_unstable();
                members.dedup();
                self.heard_member_beacon = !members.is_empty();
                let cov = u32::from(self.member) + members.len() as u32;
                let deficit = if self.member {
                    0
                } else {
                    self.k.saturating_sub(members.len() as u32)
                };
                self.deficits.push((r / 4, deficit));
                self.my_needy = deficit > 0;
                if self.my_needy {
                    ctx.broadcast(RepairMsg::Deficit { cov });
                }
                Control::Continue
            }
            2 => {
                let mut needy: Vec<(NodeId, u32)> = inbox
                    .iter()
                    .filter_map(|e| match e.payload {
                        RepairMsg::Deficit { cov } => Some((e.from, cov)),
                        _ => None,
                    })
                    .collect();
                needy.sort_unstable_by_key(|&(v, _)| v);
                needy.dedup_by_key(|&mut (v, _)| v);
                if self.member && !needy.is_empty() {
                    let ids: Vec<NodeId> = needy.iter().map(|&(v, _)| v).collect();
                    let cov_of = |v: NodeId| match needy.iter().find(|&&(w, _)| w == v) {
                        Some(&(_, c)) => c,
                        None => unreachable!("promotion candidates come from `needy`"),
                    };
                    let chosen = crate::udg::select_promotions(
                        &ids,
                        cov_of,
                        self.k as usize,
                        self.rule,
                        &mut self.rng,
                    );
                    for w in chosen {
                        ctx.send(w, RepairMsg::Promote);
                    }
                }
                if self.my_needy && (ctx.degree() < self.k as usize || !self.heard_member_beacon) {
                    self.pending_join = true;
                }
                Control::Continue
            }
            _ => {
                if inbox
                    .iter()
                    .any(|e| matches!(e.payload, RepairMsg::Promote))
                {
                    self.pending_join = true;
                }
                if self.pending_join && !self.member {
                    self.member = true;
                    self.joined = true;
                }
                self.pending_join = false;
                Control::Continue
            }
        }
    }
}

/// Result of a [`run_repair_continuous`] execution.
#[derive(Debug, Clone, PartialEq)]
pub struct ContinuousRepairRun {
    /// Final membership over the full node universe (crashed nodes keep
    /// their flag: a recovered member resumes as a member).
    pub set: DominatingSet,
    /// Nodes that joined the set at any point of the run, ascending.
    pub added: Vec<NodeId>,
    /// The per-cycle health series: the total observed coverage deficit
    /// of every probe cycle, ready for
    /// [`HealthMonitor::bursts`]/[`HealthMonitor::mttr`].
    pub monitor: HealthMonitor,
    /// Probe cycles executed.
    pub cycles: u64,
    /// Measured communication metrics of the physical execution.
    pub metrics: Metrics,
}

/// Runs the repair protocol **continuously** for `cycles` 4-round probe
/// cycles on the full graph while `stack`'s churn plan and adversary
/// inject faults live — no epochs, no global pause. Per-cycle observed
/// deficits are summed into a [`HealthMonitor`]; pair its series with
/// the burst schedule of the churn plan to get detection latency and
/// MTTR per burst.
///
/// The tracing layer brackets the run into a `monitor` span (the
/// round-0 probe) and one `repair_continuous` span per cycle.
///
/// # Errors
///
/// Returns [`KmdsError::Sim`] if the physical-round budget (the horizon
/// plus recovery slack) is exceeded — only possible if the churn plan
/// keeps nodes down-but-wakeable long past the horizon.
///
/// # Panics
///
/// Panics if the set universe mismatches the graph, `k == 0`, or the
/// stack engages the reliable transport: continuous repair runs bare —
/// ARQ cannot mask crash churn (frames to crashed nodes exhaust their
/// retransmit budget), and the protocol is loss-tolerant by design (a
/// lost beacon undercounts coverage, which only over-promotes).
pub fn run_repair_continuous(
    g: &Graph,
    set: &DominatingSet,
    k: u32,
    cfg: &RepairConfig,
    cycles: u64,
    stack: Stack,
) -> Result<(ContinuousRepairRun, Option<EventLog>), KmdsError> {
    let n = g.node_count();
    assert_eq!(set.universe(), n, "set universe mismatch");
    assert!(k >= 1, "k must be at least 1");
    assert!(
        !stack.engages_transport(),
        "continuous repair runs without the transport layer (ARQ cannot mask crash churn); \
         inject loss via the churn plan instead"
    );
    let horizon = 4 * cycles;
    let run = Executor::new(
        Topology::from_graph(g),
        |v| ContinuousRepairNode {
            k,
            rule: cfg.rule,
            rng: node_rng(cfg.seed, v),
            member: set.contains(v),
            horizon_rounds: horizon,
            heard_member_beacon: false,
            my_needy: false,
            pending_join: false,
            joined: false,
            deficits: Vec::new(),
        },
        cfg.seed,
    )
    .stack(stack)
    .phases(vec![
        Phase::span("monitor", 1),
        Phase::repeat("repair_continuous", 4),
    ])
    // Physical budget: the horizon, plus slack for nodes that sit out
    // crashed past it and still owe their halting round after recovery.
    .run(horizon.saturating_mul(4).saturating_add(64))?;
    let mut members = vec![false; n];
    let mut added = Vec::new();
    let mut sums = vec![0u64; cycles as usize];
    for (i, node) in run.logics.iter().enumerate() {
        members[i] = node.member;
        if node.joined {
            added.push(NodeId::new(i as u32));
        }
        for &(c, d) in &node.deficits {
            sums[c as usize] += u64::from(d);
        }
    }
    let mut monitor = HealthMonitor::new();
    for s in sums {
        monitor.observe(s);
    }
    #[cfg(feature = "strict-invariants")]
    if let Some(log) = &run.log {
        if let Err(e) = log.reconcile(&run.metrics) {
            unreachable!("trace rollups diverged from Metrics: {e}");
        }
    }
    Ok((
        ContinuousRepairRun {
            set: DominatingSet::from_members(members),
            added,
            monitor,
            cycles,
            metrics: run.metrics,
        },
        run.log,
    ))
}

#[cfg(test)]
#[allow(deprecated)] // the shims stay under test to pin their parity with the stack
mod tests {
    use super::*;
    use crate::udg::UdgAlgorithm;
    use crate::validate::{is_k_dominating, Semantics};
    use ftclust_graphs::generators;
    use ftclust_netsim::node_rng as nrng;
    use rand::Rng;

    /// Kill `count` members (spread across the id range) plus `count / 2`
    /// non-members, deterministically per seed.
    fn churn_mask(g: &Graph, set: &DominatingSet, count: usize, seed: u64) -> Vec<bool> {
        let mut alive = vec![true; g.node_count()];
        let mut rng = nrng(seed, NodeId::new(0));
        let members: Vec<NodeId> = set.ids().collect();
        for _ in 0..count {
            if members.is_empty() {
                break;
            }
            let idx = rng.random_range(0..members.len());
            alive[members[idx].index()] = false;
        }
        for _ in 0..count / 2 {
            let v = rng.random_range(0..g.node_count());
            alive[v] = false;
        }
        alive
    }

    #[test]
    fn heals_after_member_failures() {
        for k in [1u32, 2, 3] {
            let udg = generators::random_udg(400, 10.0, 1.0, 20 + u64::from(k));
            let g = udg.graph();
            let run = UdgAlgorithm::new(k).seed(3).run(&udg).unwrap();
            let alive = churn_mask(g, &run.set, 8, u64::from(k));
            let out = repair_coverage(g, &run.set, &alive, k, &RepairConfig::new(5)).unwrap();
            let (sub, survivors) = surviving_instance(g, &out.set, &alive);
            assert!(
                is_k_dominating(&sub, &survivors, k, Semantics::Strict),
                "not healed for k={k}"
            );
            // Dead nodes never stay in (or enter) the repaired set.
            assert!(out.set.ids().all(|v| alive[v.index()]));
            assert_eq!(out.rounds, 1 + 3 * u64::from(out.iterations));
            assert!(out.messages > 0);
        }
    }

    #[test]
    fn intact_set_needs_no_repair() {
        let udg = generators::random_udg(200, 8.0, 1.0, 4);
        let g = udg.graph();
        let run = UdgAlgorithm::new(2).seed(1).run(&udg).unwrap();
        let alive = vec![true; g.node_count()];
        let out = repair_coverage(g, &run.set, &alive, 2, &RepairConfig::new(0)).unwrap();
        assert_eq!(out.iterations, 0);
        assert_eq!(out.rounds, 1);
        assert_eq!(out.added, vec![]);
        assert_eq!(out.deficit_nodes, 0);
        assert_eq!(out.peak_deficit, 0);
        assert_eq!(out.set, run.set);
    }

    #[test]
    fn additions_stay_local_to_failures() {
        // With a valid pre-failure set, every added node must be within 2
        // hops of some dead node (the module-docs locality argument; the
        // strict-invariants audit re-checks this on every call).
        let udg = generators::random_udg(500, 12.0, 1.0, 9);
        let g = udg.graph();
        let run = UdgAlgorithm::new(2).seed(2).run(&udg).unwrap();
        let alive = churn_mask(g, &run.set, 10, 17);
        let out = repair_coverage(g, &run.set, &alive, 2, &RepairConfig::new(3)).unwrap();
        for &v in &out.added {
            let near_failure = g
                .closed_neighbors(v)
                .any(|u| !alive[u.index()] || g.neighbors(u).iter().any(|w| !alive[w.index()]));
            assert!(near_failure, "{v:?} added far from any failure");
        }
    }

    #[test]
    fn island_without_members_self_elects() {
        // Two far-apart cliques; the set lives entirely in one of them.
        // Killing it leaves an island with no member neighbors anywhere —
        // repair must still converge via self-election.
        let g = generators::gnp(6, 1.0, 0); // complete on 6 nodes
        let set = DominatingSet::from_ids(6, [NodeId::new(0), NodeId::new(1)]);
        let mut alive = vec![true; 6];
        alive[0] = false;
        alive[1] = false;
        let out = repair_coverage(&g, &set, &alive, 2, &RepairConfig::new(0)).unwrap();
        let (sub, survivors) = surviving_instance(&g, &out.set, &alive);
        assert!(is_k_dominating(&sub, &survivors, 2, Semantics::Strict));
        assert!(!out.set.is_empty());
    }

    #[test]
    fn degree_deficient_survivors_join_the_set() {
        // A path 0-1-2 where node 1 dies: nodes 0 and 2 each have 0
        // surviving neighbors, so k=1 strict domination is only possible
        // if both join the set themselves.
        let g = generators::path(3);
        let set = DominatingSet::from_ids(3, [NodeId::new(1)]);
        let alive = vec![true, false, true];
        let out = repair_coverage(&g, &set, &alive, 1, &RepairConfig::new(0)).unwrap();
        assert!(out.set.contains(NodeId::new(0)));
        assert!(out.set.contains(NodeId::new(2)));
        assert_eq!(out.peak_deficit, 1);
        assert_eq!(out.deficit_nodes, 2);
    }

    #[test]
    fn all_rules_heal_and_are_deterministic() {
        let udg = generators::random_udg(300, 10.0, 1.0, 33);
        let g = udg.graph();
        let run = UdgAlgorithm::new(3).seed(8).run(&udg).unwrap();
        let alive = churn_mask(g, &run.set, 6, 2);
        for rule in [
            PromotionRule::LowestId,
            PromotionRule::MostDeficient,
            PromotionRule::Random,
        ] {
            let cfg = RepairConfig::new(11).rule(rule);
            let a = repair_coverage(g, &run.set, &alive, 3, &cfg).unwrap();
            let b = repair_coverage(g, &run.set, &alive, 3, &cfg).unwrap();
            assert_eq!(a, b, "{rule:?} not deterministic");
            let (sub, survivors) = surviving_instance(g, &a.set, &alive);
            assert!(
                is_k_dominating(&sub, &survivors, 3, Semantics::Strict),
                "{rule:?} failed to heal"
            );
        }
    }

    #[test]
    fn thread_count_does_not_change_repair() {
        let udg = generators::random_udg(600, 12.0, 1.0, 44);
        let g = udg.graph();
        let run = UdgAlgorithm::new(2).seed(5).run(&udg).unwrap();
        let alive = churn_mask(g, &run.set, 12, 7);
        let cfg = RepairConfig::new(21).rule(PromotionRule::Random);
        let baseline =
            ftclust_par::with_threads(1, || repair_coverage(g, &run.set, &alive, 2, &cfg).unwrap());
        for threads in [2usize, 7] {
            let out = ftclust_par::with_threads(threads, || {
                repair_coverage(g, &run.set, &alive, 2, &cfg).unwrap()
            });
            assert_eq!(out, baseline, "diverged at {threads} threads");
        }
    }

    #[test]
    fn everyone_dead_is_a_trivial_heal() {
        let g = generators::cycle(5);
        let set = DominatingSet::full(5);
        let alive = vec![false; 5];
        let out = repair_coverage(&g, &set, &alive, 2, &RepairConfig::new(0)).unwrap();
        assert!(out.set.is_empty());
        assert_eq!(out.iterations, 0);
        assert_eq!(out.messages, 0);
    }

    /// Asserts the engine-visible fields of a protocol run against the
    /// engine outcome for the same inputs.
    fn assert_protocol_matches(proto: &RepairProtocolRun, engine: &RepairOutcome, what: &str) {
        assert_eq!(proto.set, engine.set, "{what}: set diverged");
        assert_eq!(proto.added, engine.added, "{what}: additions diverged");
        assert_eq!(
            proto.iterations, engine.iterations,
            "{what}: iteration count diverged"
        );
        assert_eq!(
            proto.peak_deficit, engine.peak_deficit,
            "{what}: peak deficit diverged"
        );
        assert_eq!(
            proto.deficit_nodes, engine.deficit_nodes,
            "{what}: deficit node count diverged"
        );
    }

    #[test]
    fn protocol_matches_engine_across_rules() {
        let udg = generators::random_udg(300, 10.0, 1.0, 33);
        let g = udg.graph();
        let run = UdgAlgorithm::new(3).seed(8).run(&udg).unwrap();
        let alive = churn_mask(g, &run.set, 6, 2);
        for rule in [
            PromotionRule::LowestId,
            PromotionRule::MostDeficient,
            PromotionRule::Random,
        ] {
            for seed in [0u64, 11] {
                let cfg = RepairConfig::new(seed).rule(rule);
                let engine = repair_coverage(g, &run.set, &alive, 3, &cfg).unwrap();
                let proto = run_repair_protocol(g, &run.set, &alive, 3, &cfg).unwrap();
                assert_protocol_matches(&proto, &engine, &format!("{rule:?} seed {seed}"));
                // Detection + 3 rounds per iteration + the trailing no-op
                // iteration in which everyone observes silence and halts.
                assert_eq!(
                    proto.metrics.rounds,
                    3 * (u64::from(engine.iterations) + 1),
                    "{rule:?} seed {seed}: round count"
                );
            }
        }
    }

    #[test]
    fn protocol_handles_trivial_and_islanded_cases() {
        // Nobody alive: nothing to simulate.
        let g = generators::cycle(5);
        let out = run_repair_protocol(
            &g,
            &DominatingSet::full(5),
            &[false; 5],
            2,
            &RepairConfig::new(0),
        )
        .unwrap();
        assert!(out.set.is_empty());
        assert_eq!(out.iterations, 0);
        assert_eq!(out.metrics.messages, 0);

        // Memberless island: self-election path, including isolated nodes.
        let g = generators::path(3);
        let set = DominatingSet::from_ids(3, [NodeId::new(1)]);
        let alive = vec![true, false, true];
        let engine = repair_coverage(&g, &set, &alive, 1, &RepairConfig::new(0)).unwrap();
        let proto = run_repair_protocol(&g, &set, &alive, 1, &RepairConfig::new(0)).unwrap();
        assert_protocol_matches(&proto, &engine, "severed path");
        assert!(proto.set.contains(NodeId::new(0)));
        assert!(proto.set.contains(NodeId::new(2)));
    }

    #[test]
    fn lossy_protocol_matches_engine() {
        use ftclust_netsim::transport::TransportConfig;
        use ftclust_netsim::ChurnPlan;
        let udg = generators::random_udg(200, 9.0, 1.0, 51);
        let g = udg.graph();
        let run = UdgAlgorithm::new(2).seed(6).run(&udg).unwrap();
        let alive = churn_mask(g, &run.set, 6, 9);
        let cfg = RepairConfig::new(13).rule(PromotionRule::Random);
        let engine = repair_coverage(g, &run.set, &alive, 2, &cfg).unwrap();
        for p in [0.0, 0.05, 0.2] {
            let proto = run_repair_protocol_lossy(
                g,
                &run.set,
                &alive,
                2,
                &cfg,
                ChurnPlan::none().drop_probability(p),
                TransportConfig::default(),
            )
            .unwrap();
            assert_protocol_matches(&proto, &engine, &format!("p = {p}"));
            if p == 0.0 {
                assert_eq!(proto.metrics.retransmits, 0, "lossless run retransmitted");
            } else {
                assert!(
                    proto.metrics.retransmits > 0,
                    "p = {p} run saw no retransmissions"
                );
            }
        }
    }

    #[test]
    fn traced_run_matches_untraced_and_reconciles() {
        use ftclust_netsim::trace::{REGISTERED_SPANS, UNSPANNED};
        let udg = generators::random_udg(300, 10.0, 1.0, 21);
        let g = udg.graph();
        let run = UdgAlgorithm::new(2).seed(3).run(&udg).unwrap();
        let alive = churn_mask(g, &run.set, 6, 2);
        let cfg = RepairConfig::new(5);
        let base = run_repair_protocol(g, &run.set, &alive, 2, &cfg).unwrap();
        let (traced, log) = run_repair_protocol_traced(g, &run.set, &alive, 2, &cfg).unwrap();
        assert_eq!(base, traced);
        log.reconcile(&traced.metrics).unwrap();
        let rollups = log.rollups();
        for r in &rollups {
            assert!(
                r.name == UNSPANNED || REGISTERED_SPANS.contains(&r.name),
                "unregistered span {:?}",
                r.name
            );
        }
        for expected in ["repair_heartbeat", "repair_iter"] {
            assert!(
                rollups.iter().any(|r| r.name == expected),
                "missing phase {expected}"
            );
        }
    }

    /// Alive mask for a churn plan whose crashes are never recovered.
    fn alive_after(n: usize, churn: &ftclust_netsim::ChurnPlan) -> Vec<bool> {
        use ftclust_netsim::ChurnEvent;
        let mut alive = vec![true; n];
        for (_, v, ev) in churn.scheduled_events() {
            alive[v.index()] = matches!(ev, ChurnEvent::Recover);
        }
        alive
    }

    #[test]
    fn continuous_repair_heals_scheduled_burst() {
        use ftclust_netsim::ChurnPlan;
        let udg = generators::random_udg(300, 10.0, 1.0, 33);
        let g = udg.graph();
        let run = UdgAlgorithm::new(2).seed(4).run(&udg).unwrap();
        // Crash a slice of members at round 8 — the cycle-2 probe.
        let members: Vec<NodeId> = run.set.ids().collect();
        let mut churn = ChurnPlan::none();
        for &m in members.iter().step_by(3).take(8) {
            churn = churn.crash(m, 8);
        }
        let cfg = RepairConfig::new(7);
        let (out, _) = run_repair_continuous(
            g,
            &run.set,
            2,
            &cfg,
            10,
            Stack::new().churned(churn.clone()),
        )
        .unwrap();
        assert_eq!(out.cycles, 10);
        assert_eq!(out.monitor.cycles(), 10);
        // Quiet before the burst: the initial set strictly 2-dominates.
        assert_eq!(&out.monitor.deficits()[..2], &[0, 0]);
        // The burst is detected at its own probe cycle and repaired.
        let reports = out.monitor.bursts(&[2]);
        assert_eq!(reports[0].detected_cycle, Some(2));
        let mttr = ftclust_netsim::monitor::HealthMonitor::mttr(&reports)
            .expect("burst must be repaired within the run");
        assert!(mttr >= 1.0, "repair cannot precede detection");
        assert!(!out.added.is_empty(), "healing must add replacements");
        // The healed set strictly k-dominates the survivors.
        let alive = alive_after(g.node_count(), &churn);
        let (sub, survivors) = surviving_instance(g, &out.set, &alive);
        assert!(is_k_dominating(&sub, &survivors, 2, Semantics::Strict));
    }

    #[test]
    fn continuous_repair_heals_under_adversarial_chaos() {
        use ftclust_netsim::{AdversaryPlan, ChurnPlan};
        let udg = generators::random_udg(300, 10.0, 1.0, 33);
        let g = udg.graph();
        let run = UdgAlgorithm::new(2).seed(4).run(&udg).unwrap();
        let members: Vec<NodeId> = run.set.ids().collect();
        let mut churn = ChurnPlan::none();
        for &m in members.iter().step_by(3).take(8) {
            churn = churn.crash(m, 8);
        }
        // Jitter capped at 3 rounds: a delayed probe beacon can never
        // alias into a later deficit round (that needs delay ≡ 0 mod 4),
        // so out-of-phase arrivals degrade to loss, which the protocol
        // tolerates by design.
        let plan = AdversaryPlan::new(0xC4A05)
            .jitter(0.15, 3)
            .duplicate(0.1)
            .corrupt(0.1);
        let cfg = RepairConfig::new(7);
        let (out, _) = run_repair_continuous(
            g,
            &run.set,
            2,
            &cfg,
            16,
            Stack::new().churned(churn.clone()).adversarial(plan),
        )
        .unwrap();
        assert!(out.metrics.corrupted > 0, "chaos run saw no corruption");
        assert!(
            out.metrics.net_duplicated > 0,
            "chaos run saw no duplicates"
        );
        let reports = out.monitor.bursts(&[2]);
        assert!(reports[0].detected_cycle.is_some(), "burst went undetected");
        assert!(
            reports[0].repaired_cycle.is_some(),
            "burst unrepaired under chaos: deficits {:?}",
            out.monitor.deficits()
        );
        let alive = alive_after(g.node_count(), &churn);
        let (sub, survivors) = surviving_instance(g, &out.set, &alive);
        assert!(is_k_dominating(&sub, &survivors, 2, Semantics::Strict));
    }

    #[test]
    fn continuous_repair_is_thread_invariant_and_reconciles() {
        use ftclust_netsim::trace::REGISTERED_SPANS;
        use ftclust_netsim::{AdversaryPlan, ChurnPlan};
        let udg = generators::random_udg(200, 9.0, 1.0, 51);
        let g = udg.graph();
        let run = UdgAlgorithm::new(2).seed(6).run(&udg).unwrap();
        let members: Vec<NodeId> = run.set.ids().collect();
        let mut churn = ChurnPlan::none();
        for &m in members.iter().take(4) {
            churn = churn.crash(m, 4);
        }
        let stack = || {
            Stack::new()
                .churned(churn.clone())
                .adversarial(
                    AdversaryPlan::new(7)
                        .jitter(0.2, 2)
                        .duplicate(0.1)
                        .corrupt(0.05),
                )
                .traced()
        };
        let cfg = RepairConfig::new(9);
        let runs: Vec<_> = [1usize, 2, 7]
            .into_iter()
            .map(|t| {
                par::with_threads(t, || {
                    run_repair_continuous(g, &run.set, 2, &cfg, 8, stack()).unwrap()
                })
            })
            .collect();
        let (base, log) = &runs[0];
        let log = log.as_ref().expect("traced run must produce a log");
        log.reconcile(&base.metrics).unwrap();
        for r in log.rollups() {
            assert!(
                REGISTERED_SPANS.contains(&r.name),
                "unregistered span {:?}",
                r.name
            );
        }
        for (t, (other, other_log)) in [2usize, 7].into_iter().zip(&runs[1..]) {
            assert_eq!(base, other, "results diverged at {t} threads");
            assert_eq!(
                log.to_jsonl(),
                other_log.as_ref().unwrap().to_jsonl(),
                "event log diverged at {t} threads"
            );
        }
    }

    #[test]
    #[should_panic(expected = "without the transport layer")]
    fn continuous_repair_rejects_transport() {
        let udg = generators::random_udg(50, 5.0, 1.0, 1);
        let g = udg.graph();
        let run = UdgAlgorithm::new(1).seed(1).run(&udg).unwrap();
        let _ = run_repair_continuous(
            g,
            &run.set,
            1,
            &RepairConfig::new(1),
            2,
            Stack::new().transport(TransportConfig::default()),
        );
    }
}
