//! The weighted extension of k-MDS mentioned in Section 4.1: *"It would
//! also be possible to extend our algorithm to also solve the weighted
//! version of the k-MDS problem."*
//!
//! In weighted k-MDS every node has a cost `c_v > 0` and the goal is a
//! minimum-**cost** k-fold dominating set. This module provides
//!
//! * the weighted LP (`min c·x` over the same covering constraints),
//!   solvable exactly with [`ftclust_lp::solve`] for ratio measurements,
//! * [`weighted_greedy_kmds`] — the classic cost-effectiveness greedy
//!   (`H(Δ+1)`-approximation for weighted multi-cover), and
//! * [`weighted_round`] — randomized rounding of a weighted fractional
//!   solution (Algorithm 2 verbatim: the sampling probabilities depend
//!   only on `x`, not on the costs, and the analysis of Theorem 4.6
//!   carries over to the cost objective by linearity of expectation).

use crate::rounding::{round_fractional, RoundingParams};
use crate::validate::Semantics;
use crate::{DominatingSet, Instance, KmdsError};
use ftclust_lp::CoveringLp;

/// A weighted instance: demands plus positive node costs.
#[derive(Debug, Clone)]
pub struct WeightedInstance<'a> {
    inst: Instance<'a>,
    costs: Vec<f64>,
}

impl<'a> WeightedInstance<'a> {
    /// Wraps an instance with per-node costs.
    ///
    /// # Errors
    ///
    /// Returns [`KmdsError::DemandLengthMismatch`] if the cost vector has
    /// the wrong length.
    ///
    /// # Panics
    ///
    /// Panics if any cost is non-positive or non-finite.
    pub fn new(inst: Instance<'a>, costs: Vec<f64>) -> Result<Self, KmdsError> {
        if costs.len() != inst.graph().node_count() {
            return Err(KmdsError::DemandLengthMismatch {
                demands: costs.len(),
                nodes: inst.graph().node_count(),
            });
        }
        assert!(
            costs.iter().all(|&c| c.is_finite() && c > 0.0),
            "costs must be positive and finite"
        );
        Ok(WeightedInstance { inst, costs })
    }

    /// The underlying unweighted instance.
    pub fn instance(&self) -> &Instance<'a> {
        &self.inst
    }

    /// The node costs.
    pub fn costs(&self) -> &[f64] {
        &self.costs
    }

    /// Total cost of a set.
    pub fn cost_of(&self, set: &DominatingSet) -> f64 {
        set.ids().map(|v| self.costs[v.index()]).sum()
    }

    /// The weighted covering LP `min c·x` over the `(PP)` constraints.
    pub fn to_lp(&self) -> CoveringLp {
        let mut lp = self.inst.to_lp();
        for (j, &c) in self.costs.iter().enumerate() {
            if lp.set_objective(j, c).is_err() {
                unreachable!("costs were validated at construction");
            }
        }
        lp
    }
}

/// Cost-effectiveness greedy for weighted k-MDS: repeatedly add the node
/// minimizing `cost / (newly satisfied coverage units)`.
pub fn weighted_greedy_kmds(winst: &WeightedInstance<'_>, semantics: Semantics) -> DominatingSet {
    let inst = winst.instance();
    let g = inst.graph();
    let n = g.node_count();
    let mut residual: Vec<i64> = inst.demands().iter().map(|&k| k as i64).collect();
    let mut set = DominatingSet::empty(n);
    loop {
        if !residual.iter().any(|&r| r > 0) {
            return set;
        }
        let mut best: Option<(f64, u32)> = None;
        for v in g.nodes() {
            if set.contains(v) {
                continue;
            }
            let mut gain = g
                .closed_neighbors(v)
                .filter(|w| residual[w.index()] > 0)
                .count() as f64;
            if semantics == Semantics::Strict && residual[v.index()] > 0 {
                // Joining also cancels the rest of v's own demand.
                gain += (residual[v.index()] - 1).max(0) as f64;
            }
            if gain <= 0.0 {
                continue;
            }
            let ratio = winst.costs()[v.index()] / gain;
            if best.is_none_or(|(br, bv)| (ratio, v.raw()) < (br, bv)) {
                best = Some((ratio, v.raw()));
            }
        }
        let Some((_, u)) = best else {
            unreachable!("Instance validation caps demands by closed-neighborhood size");
        };
        let v = ftclust_graphs::NodeId::new(u);
        set.insert(v);
        for w in g.closed_neighbors(v) {
            if residual[w.index()] > 0 {
                residual[w.index()] -= 1;
            }
        }
        if semantics == Semantics::Strict {
            residual[v.index()] = 0;
        }
    }
}

/// Rounds a weighted fractional solution exactly as Algorithm 2 does —
/// the rounding step is oblivious to costs, and the Theorem 4.6 analysis
/// bounds `E[cost]` the same way it bounds `E[|S|]`.
pub fn weighted_round(
    winst: &WeightedInstance<'_>,
    x: &[f64],
    delta: usize,
    seed: u64,
    params: &RoundingParams,
) -> (DominatingSet, f64) {
    let out = round_fractional(winst.instance(), x, delta, seed, params);
    let cost = winst.cost_of(&out.set);
    (out.set, cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::is_k_dominating_instance;
    use ftclust_graphs::generators;
    use ftclust_lp::solve as lp_solve;

    fn costs_for(n: usize, seed: u64) -> Vec<f64> {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.random_range(0.5..5.0)).collect()
    }

    #[test]
    fn weighted_greedy_is_feasible_and_cost_aware() {
        let g = generators::star(12);
        let inst = Instance::uniform(&g, 1).unwrap();
        // Make the center very expensive: greedy should avoid it for
        // cheap leaves... but leaves only cover themselves + center, so
        // the center still wins on effectiveness when it is not absurd.
        let mut costs = vec![1.0; 12];
        costs[0] = 100.0;
        let winst = WeightedInstance::new(inst.clone(), costs).unwrap();
        let set = weighted_greedy_kmds(&winst, Semantics::Strict);
        assert!(is_k_dominating_instance(&inst, &set, Semantics::Strict));
        // All-leaves costs 11 < center 100: greedy must not pick the hub.
        assert!(!set.contains(ftclust_graphs::NodeId::new(0)));
        assert!((winst.cost_of(&set) - 11.0).abs() < 1e-9);
    }

    #[test]
    fn weighted_lp_lower_bounds_greedy() {
        let g = generators::gnp(40, 0.15, 6);
        let inst = Instance::uniform_clamped(&g, 2);
        let winst = WeightedInstance::new(inst, costs_for(40, 1)).unwrap();
        let lp_opt = lp_solve(&winst.to_lp()).unwrap().value;
        let greedy = weighted_greedy_kmds(&winst, Semantics::CoverSelf);
        let cost = winst.cost_of(&greedy);
        assert!(cost >= lp_opt - 1e-7);
        let delta = winst.instance().graph().max_degree();
        let hd = (1..=delta + 1).map(|i| 1.0 / i as f64).sum::<f64>();
        assert!(
            cost <= (hd + 1.0) * lp_opt + 1e-6,
            "greedy cost {cost} vs H(Δ+1)·LP {}",
            hd * lp_opt
        );
    }

    #[test]
    fn weighted_rounding_is_feasible() {
        let g = generators::gnp(60, 0.12, 2);
        let inst = Instance::uniform_clamped(&g, 2);
        let winst = WeightedInstance::new(inst.clone(), costs_for(60, 2)).unwrap();
        let lp = lp_solve(&winst.to_lp()).unwrap();
        let (set, cost) =
            weighted_round(&winst, &lp.x, g.max_degree(), 4, &RoundingParams::default());
        assert!(is_k_dominating_instance(&inst, &set, Semantics::CoverSelf));
        assert!(cost >= lp.value - 1e-7);
    }

    #[test]
    fn cost_vector_validation() {
        let g = generators::path(3);
        let inst = Instance::uniform_clamped(&g, 1);
        assert!(WeightedInstance::new(inst.clone(), vec![1.0, 1.0]).is_err());
        let winst = WeightedInstance::new(inst, vec![1.0, 2.0, 3.0]).unwrap();
        let set = DominatingSet::from_ids(3, [ftclust_graphs::NodeId::new(1)]);
        assert_eq!(winst.cost_of(&set), 2.0);
    }

    #[test]
    #[should_panic(expected = "costs must be positive")]
    fn non_positive_costs_panic() {
        let g = generators::path(2);
        let inst = Instance::uniform_clamped(&g, 1);
        let _ = WeightedInstance::new(inst, vec![1.0, 0.0]);
    }
}
