//! Connected backbones from dominating sets.
//!
//! The paper's introduction motivates dominating sets as *virtual
//! backbones* for routing [1, 22, 23]. A backbone must be **connected** to
//! route, and a (k-fold) dominating set is not automatically so. This
//! module implements the classic connection step: any two dominators of
//! neighboring clusters are within 3 hops, so joining clusters along
//! ordinary graph edges with at most two *connector* nodes per join yields
//! a connected dominating set of size at most `3·|S| − 2` per connected
//! component — the approach of Wan, Alzoubi & Frieder (INFOCOM 2002),
//! reference \[22\] of the paper.
//!
//! The input set keeps its k-fold domination property (we only add nodes).

use crate::{DominatingSet, KmdsError};
use ftclust_graphs::{Graph, NodeId};
use std::collections::VecDeque;

/// Union–find over node ids.
struct Dsu {
    parent: Vec<u32>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Dsu {
            parent: (0..n as u32).collect(),
        }
    }
    fn find(&mut self, x: u32) -> u32 {
        let mut root = x;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        let mut cur = x;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }
    fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            false
        } else {
            self.parent[ra as usize] = rb;
            true
        }
    }
}

/// Extends a dominating set to a **connected** dominating set by adding
/// connector nodes.
///
/// Every non-dominator is labeled with its lowest-id dominator neighbor;
/// scanning the graph's edges, whenever an edge bridges two different
/// clusters whose dominators are not yet connected in the backbone, its
/// (at most two) non-dominator endpoints are added as connectors. The
/// result is connected within every connected component of `g` and
/// contains the input set, so it retains any k-fold domination property
/// the input had.
///
/// Returns the backbone and the number of connectors added.
///
/// # Errors
///
/// Returns [`KmdsError::IterationLimit`] if `set` is not a dominating set
/// of `g` (some node has no dominator in its closed neighborhood), since
/// then no labeling exists.
///
/// # Example
///
/// ```
/// use ftclust_core::connect::connect_dominating_set;
/// use ftclust_core::DominatingSet;
/// use ftclust_graphs::{generators, NodeId};
///
/// let g = generators::path(7);
/// // {1, 5} dominates P7 minus node 3... take {0, 3, 6}: dominating,
/// // but the induced subgraph has no edges.
/// let ds = DominatingSet::from_ids(7, [0, 3, 6].map(NodeId::new));
/// let (cds, added) = connect_dominating_set(&g, &ds)?;
/// assert!(added > 0);
/// assert!(ftclust_core::connect::is_backbone_connected(&g, &cds));
/// # Ok::<(), ftclust_core::KmdsError>(())
/// ```
pub fn connect_dominating_set(
    g: &Graph,
    set: &DominatingSet,
) -> Result<(DominatingSet, usize), KmdsError> {
    let n = g.node_count();
    assert_eq!(set.universe(), n, "set universe mismatch");
    // Label every node with a dominator in its closed neighborhood.
    let mut label = vec![u32::MAX; n];
    for v in g.nodes() {
        if set.contains(v) {
            label[v.index()] = v.raw();
        } else if let Some(d) = g.closed_neighbors(v).find(|&w| set.contains(w)) {
            label[v.index()] = d.raw();
        } else if g.degree(v) > 0 || !set.is_empty() {
            return Err(KmdsError::IterationLimit {
                stage: "connect: input not dominating",
                limit: 0,
            });
        }
    }
    let mut dsu = Dsu::new(n);
    let mut backbone = set.clone();
    let mut connectors = 0usize;
    // First merge clusters joined by dominator-dominator or
    // dominator-adjacent edges (no connectors needed), then the rest.
    let edges: Vec<(NodeId, NodeId)> = g.edges().collect();
    for &(u, v) in &edges {
        let (lu, lv) = (label[u.index()], label[v.index()]);
        if lu == lv {
            continue;
        }
        let cost = usize::from(!set.contains(u) && u.raw() != lv && v.raw() != lu)
            + usize::from(!set.contains(v) && v.raw() != lu && u.raw() != lv);
        if cost == 0 {
            dsu.union(lu, lv);
        }
    }
    // Cheap joins first (one connector), then two-connector joins.
    for want_cost in [1usize, 2] {
        for &(u, v) in &edges {
            let (lu, lv) = (label[u.index()], label[v.index()]);
            if lu == lv || dsu.find(lu) == dsu.find(lv) {
                continue;
            }
            let mut needed: Vec<NodeId> = Vec::new();
            if !set.contains(u) {
                needed.push(u);
            }
            if !set.contains(v) {
                needed.push(v);
            }
            if needed.len() != want_cost {
                continue;
            }
            dsu.union(lu, lv);
            for w in needed {
                if backbone.insert(w) {
                    connectors += 1;
                }
            }
        }
    }
    Ok((backbone, connectors))
}

/// Checks that the subgraph of `g` induced by `backbone` is connected
/// **within every connected component of `g`** — i.e. any two backbone
/// nodes joined by a path in `g` are joined by a path through backbone
/// nodes only. (Vacuously true for empty backbones.)
pub fn is_backbone_connected(g: &Graph, backbone: &DominatingSet) -> bool {
    let n = g.node_count();
    assert_eq!(backbone.universe(), n, "set universe mismatch");
    // BFS over the induced subgraph from one backbone seed per component.
    let comps = ftclust_graphs::traversal::connected_components(g);
    let mut seen_comp = vec![false; comps.component_count()];
    let mut visited = vec![false; n];
    let mut queue = VecDeque::new();
    for v in backbone.ids() {
        let c = comps.label(v) as usize;
        if seen_comp[c] {
            continue;
        }
        seen_comp[c] = true;
        visited[v.index()] = true;
        queue.push_back(v);
        while let Some(u) = queue.pop_front() {
            for &w in g.neighbors(u) {
                if backbone.contains(w) && !visited[w.index()] {
                    visited[w.index()] = true;
                    queue.push_back(w);
                }
            }
        }
    }
    backbone.ids().all(|v| visited[v.index()])
}

/// Structural robustness of a backbone: how many of its nodes are single
/// points of failure for backbone connectivity.
#[derive(Debug, Clone, PartialEq)]
pub struct BackboneRobustness {
    /// Backbone size.
    pub size: usize,
    /// Articulation points *within the induced backbone subgraph* — nodes
    /// whose individual failure splits the backbone.
    pub articulation_points: usize,
    /// `articulation_points / size` (0 for empty backbones).
    pub articulation_fraction: f64,
}

/// Measures how fragile a backbone's *connectivity* is: a connected
/// backbone with many articulation points still partitions when a single
/// head dies, so fault-tolerant deployments want this fraction low.
/// Complements the coverage-centric analysis in [`crate::fault`].
pub fn backbone_robustness(g: &Graph, backbone: &DominatingSet) -> BackboneRobustness {
    let members: Vec<NodeId> = backbone.ids().collect();
    let (sub, _) = g.induced_subgraph(&members);
    let cuts = ftclust_graphs::traversal::articulation_points(&sub).len();
    BackboneRobustness {
        size: members.len(),
        articulation_points: cuts,
        articulation_fraction: if members.is_empty() {
            0.0
        } else {
            cuts as f64 / members.len() as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::greedy_kmds;
    use crate::udg::UdgAlgorithm;
    use crate::validate::{is_k_dominating, is_k_dominating_instance, Semantics};
    use crate::Instance;
    use ftclust_graphs::generators;
    use proptest::prelude::*;

    #[test]
    fn connects_udg_backbones() {
        for k in [1u32, 3] {
            let udg = generators::random_udg(400, 10.0, 1.0, 3);
            let run = UdgAlgorithm::new(k).seed(1).run(&udg).unwrap();
            let (cds, added) = connect_dominating_set(udg.graph(), &run.set).unwrap();
            assert!(is_backbone_connected(udg.graph(), &cds), "k={k}");
            // Still k-fold dominating (we only added nodes).
            assert!(is_k_dominating(udg.graph(), &cds, k, Semantics::Strict));
            // Size bound: at most 3|S| per the 2-connectors-per-join bound.
            assert!(
                cds.len() <= 3 * run.set.len() + 1,
                "added {added} connectors"
            );
        }
    }

    #[test]
    fn connects_greedy_sets_on_general_graphs() {
        let g = generators::gnp(200, 0.05, 9);
        let inst = Instance::uniform_clamped(&g, 2);
        let set = greedy_kmds(&inst, Semantics::CoverSelf);
        let (cds, _) = connect_dominating_set(&g, &set).unwrap();
        assert!(is_backbone_connected(&g, &cds));
        assert!(is_k_dominating_instance(&inst, &cds, Semantics::CoverSelf));
    }

    #[test]
    fn already_connected_sets_gain_nothing() {
        let g = generators::star(8);
        let ds = DominatingSet::from_ids(8, [NodeId::new(0)]);
        let (cds, added) = connect_dominating_set(&g, &ds).unwrap();
        assert_eq!(added, 0);
        assert_eq!(cds.len(), 1);
    }

    #[test]
    fn path_with_spread_dominators() {
        let g = generators::path(7);
        let ds = DominatingSet::from_ids(7, [0, 3, 6].map(NodeId::new));
        let (cds, added) = connect_dominating_set(&g, &ds).unwrap();
        assert!(is_backbone_connected(&g, &cds));
        // Connecting 0–3 and 3–6 needs all four intermediate nodes.
        assert_eq!(added, 4);
        assert_eq!(cds.len(), 7);
    }

    #[test]
    fn disconnected_graphs_connect_per_component() {
        let mut b = ftclust_graphs::GraphBuilder::new(8);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (4, 5), (5, 6), (6, 7)] {
            b.add_edge(u, v).unwrap();
        }
        let g = b.build();
        let ds = DominatingSet::from_ids(8, [0, 3, 4, 7].map(NodeId::new));
        let (cds, _) = connect_dominating_set(&g, &ds).unwrap();
        assert!(is_backbone_connected(&g, &cds));
    }

    #[test]
    fn non_dominating_input_is_rejected() {
        let g = generators::path(5);
        let ds = DominatingSet::from_ids(5, [NodeId::new(0)]);
        assert!(connect_dominating_set(&g, &ds).is_err());
    }

    #[test]
    fn empty_graph_and_empty_set() {
        let g = generators::empty(0);
        let (cds, added) = connect_dominating_set(&g, &DominatingSet::empty(0)).unwrap();
        assert!(cds.is_empty());
        assert_eq!(added, 0);
        assert!(is_backbone_connected(&g, &cds));
    }

    #[test]
    fn connectivity_checker_detects_gaps() {
        let g = generators::path(5);
        let gap = DominatingSet::from_ids(5, [0, 4].map(NodeId::new));
        assert!(!is_backbone_connected(&g, &gap));
        let full = DominatingSet::full(5);
        assert!(is_backbone_connected(&g, &full));
    }

    #[test]
    fn connecting_is_idempotent() {
        // A second connection pass on an already-connected backbone adds
        // nothing.
        let udg = generators::random_udg(300, 9.0, 1.0, 4);
        let run = UdgAlgorithm::new(2).seed(3).run(&udg).unwrap();
        let (cds, _) = connect_dominating_set(udg.graph(), &run.set).unwrap();
        let (cds2, added2) = connect_dominating_set(udg.graph(), &cds).unwrap();
        assert_eq!(added2, 0);
        assert_eq!(cds, cds2);
    }

    #[test]
    fn robustness_counts_backbone_cut_vertices() {
        // A path backbone: every interior member is an articulation point.
        let g = generators::path(5);
        let full = DominatingSet::full(5);
        let rob = backbone_robustness(&g, &full);
        assert_eq!(rob.size, 5);
        assert_eq!(rob.articulation_points, 3);
        assert!((rob.articulation_fraction - 0.6).abs() < 1e-12);
        // Empty backbone.
        let rob = backbone_robustness(&g, &DominatingSet::empty(5));
        assert_eq!(rob.articulation_fraction, 0.0);
        // Denser k-fold backbones on a UDG have proportionally fewer
        // single points of failure than a k = 1 backbone.
        let udg = generators::random_udg(400, 12.0, 1.0, 6);
        let b1 = UdgAlgorithm::new(1).seed(1).run(&udg).unwrap().set;
        let b3 = UdgAlgorithm::new(3).seed(1).run(&udg).unwrap().set;
        let (c1, _) = connect_dominating_set(udg.graph(), &b1).unwrap();
        let (c3, _) = connect_dominating_set(udg.graph(), &b3).unwrap();
        let r1 = backbone_robustness(udg.graph(), &c1);
        let r3 = backbone_robustness(udg.graph(), &c3);
        assert!(
            r3.articulation_fraction <= r1.articulation_fraction + 0.05,
            "k=3 backbone should not be more fragile: {r3:?} vs {r1:?}"
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn always_connects_greedy_outputs(
            n in 2u32..60,
            p in 0.05f64..0.5,
            seed in 0u64..100,
        ) {
            let g = generators::gnp(n, p, seed);
            let inst = Instance::uniform_clamped(&g, 1);
            let set = greedy_kmds(&inst, Semantics::Strict);
            let (cds, _) = connect_dominating_set(&g, &set).unwrap();
            prop_assert!(is_backbone_connected(&g, &cds));
            prop_assert!(is_k_dominating_instance(&inst, &cds, Semantics::Strict));
            prop_assert!(cds.len() <= 3 * set.len().max(1));
        }
    }
}
