//! SVG rendering of sensor deployments and their clustering backbones.
//!
//! Produces a self-contained SVG: sensors as dots, communication edges as
//! light lines, cluster heads highlighted. Useful to eyeball what the
//! algorithms produce (`ftclust udg --svg out.svg` from the CLI).

use ftclust_core::DominatingSet;
use ftclust_graphs::UnitDiskGraph;
use std::fmt::Write as _;

/// Rendering options for [`render_svg`].
#[derive(Debug, Clone)]
pub struct SvgOptions {
    /// Canvas width in pixels (height follows the aspect ratio).
    pub width: f64,
    /// Whether to draw communication edges (slow to view beyond ~10⁴
    /// edges).
    pub draw_edges: bool,
}

impl Default for SvgOptions {
    fn default() -> Self {
        SvgOptions {
            width: 800.0,
            draw_edges: true,
        }
    }
}

/// Renders a unit disk graph and a highlighted node set as an SVG string.
///
/// Set members are drawn as filled red circles, other nodes as small gray
/// dots, communication edges as thin lines.
///
/// # Panics
///
/// Panics if the set universe does not match the graph.
pub fn render_svg(udg: &UnitDiskGraph, set: &DominatingSet, options: &SvgOptions) -> String {
    assert_eq!(set.universe(), udg.node_count(), "set universe mismatch");
    let (lo, hi) = udg.bounding_box().unwrap_or((
        ftclust_geometry::Point::ORIGIN,
        ftclust_geometry::Point::new(1.0, 1.0),
    ));
    let margin = udg.radius().max(0.5);
    let span_x = (hi.x - lo.x + 2.0 * margin).max(1e-9);
    let span_y = (hi.y - lo.y + 2.0 * margin).max(1e-9);
    let scale = options.width / span_x;
    let height = span_y * scale;
    let px = |x: f64| (x - lo.x + margin) * scale;
    let py = |y: f64| height - (y - lo.y + margin) * scale;

    let mut svg = String::new();
    let _ = writeln!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{:.0}" height="{:.0}" viewBox="0 0 {:.0} {:.0}">"#,
        options.width, height, options.width, height
    );

    let _ = writeln!(svg, r#"<rect width="100%" height="100%" fill="white"/>"#);
    if options.draw_edges {
        let _ = writeln!(svg, r##"<g stroke="#c8d4e0" stroke-width="0.5">"##);
        for (u, v) in udg.graph().edges() {
            let (a, b) = (udg.position(u), udg.position(v));
            let _ = writeln!(
                svg,
                r#"<line x1="{:.1}" y1="{:.1}" x2="{:.1}" y2="{:.1}"/>"#,
                px(a.x),
                py(a.y),
                px(b.x),
                py(b.y)
            );
        }
        let _ = writeln!(svg, "</g>");
    }
    let dot = (scale * udg.radius() * 0.08).clamp(1.5, 6.0);
    let _ = writeln!(svg, r##"<g fill="#7f8c99">"##);
    for v in udg.graph().nodes().filter(|&v| !set.contains(v)) {
        let p = udg.position(v);
        let _ = writeln!(
            svg,
            r#"<circle cx="{:.1}" cy="{:.1}" r="{dot:.1}"/>"#,
            px(p.x),
            py(p.y)
        );
    }
    let _ = writeln!(svg, "</g>");
    let _ = writeln!(
        svg,
        r##"<g fill="#d62728" stroke="#7a1516" stroke-width="0.8">"##
    );

    for v in set.ids() {
        let p = udg.position(v);
        let _ = writeln!(
            svg,
            r#"<circle cx="{:.1}" cy="{:.1}" r="{:.1}"/>"#,
            px(p.x),
            py(p.y),
            dot * 1.8
        );
    }
    let _ = writeln!(svg, "</g>");
    let _ = writeln!(svg, "</svg>");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftclust_graphs::{generators, NodeId};

    #[test]
    fn renders_well_formed_svg() {
        let udg = generators::random_udg(50, 6.0, 1.0, 1);
        let set = DominatingSet::from_ids(50, [NodeId::new(0), NodeId::new(3)]);
        let svg = render_svg(&udg, &set, &SvgOptions::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // 2 highlighted + 48 plain circles.
        assert_eq!(svg.matches("<circle").count(), 50);
        assert!(svg.contains("<line"));
    }

    #[test]
    fn edges_can_be_disabled() {
        let udg = generators::random_udg(30, 5.0, 1.0, 2);
        let set = DominatingSet::empty(30);
        let svg = render_svg(
            &udg,
            &set,
            &SvgOptions {
                draw_edges: false,
                ..Default::default()
            },
        );
        assert!(!svg.contains("<line"));
    }

    #[test]
    fn tall_narrow_deployment_keeps_positive_dimensions() {
        // A vertical line of nodes: the height must scale with the aspect
        // ratio and every circle must stay inside the canvas.
        let pts: Vec<_> = (0..12)
            .map(|i| ftclust_geometry::Point::new(0.0, i as f64))
            .collect();
        let udg = ftclust_graphs::UnitDiskGraph::build(pts, 1.0).unwrap();
        let svg = render_svg(&udg, &DominatingSet::empty(12), &SvgOptions::default());
        // Height > width for an 11-unit-tall, 0-wide deployment.
        let h: f64 = svg
            .split("height=\"")
            .nth(1)
            .and_then(|s| s.split('"').next())
            .and_then(|s| s.parse().ok())
            .expect("height attribute");
        let w: f64 = svg
            .split("width=\"")
            .nth(1)
            .and_then(|s| s.split('"').next())
            .and_then(|s| s.parse().ok())
            .expect("width attribute");
        assert!(h > w, "height {h} should exceed width {w}");
        assert!(!svg.contains("NaN"));
    }

    #[test]
    fn empty_deployment_renders() {
        let udg = ftclust_graphs::UnitDiskGraph::build(vec![], 1.0).unwrap();
        let svg = render_svg(&udg, &DominatingSet::empty(0), &SvgOptions::default());
        assert!(svg.contains("</svg>"));
    }
}
