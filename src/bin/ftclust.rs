//! `ftclust` — command-line front end for the fault-tolerant clustering
//! library.
//!
//! ```text
//! ftclust generate --family rgg --nodes 500 --seed 7 --out g.txt [--positions p.txt]
//! ftclust info     --graph g.txt
//! ftclust solve    --graph g.txt --k 2 [--algorithm pipeline|greedy|jrs|local|exact]
//!                  [--t 4] [--seed 0] [--connect] [--out set.txt]
//! ftclust udg      --positions p.txt --radius 1.0 --k 2 [--algorithm udg|grid]
//!                  [--seed 0] [--svg out.svg] [--out set.txt]
//! ```
//!
//! Argument parsing is hand-rolled (`--key value` pairs) to keep the
//! dependency tree at the workspace's approved set.

use ftclust::core::baselines::{grid_clustering, jrs_kmds};
use ftclust::core::prelude::*;
use ftclust::core::udg::UdgAlgorithm;
use ftclust::graphs::{generators, io, stats, Graph, UnitDiskGraph};
use ftclust::render::{render_svg, SvgOptions};
use std::collections::HashMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  ftclust generate --family <gnp|ba|grid|tree|rgg|clustered> --nodes <n>
                   [--seed <s>] [--avg-degree <d>] --out <graph.txt>
                   [--positions <pos.txt>]       (rgg/clustered only)
  ftclust info     --graph <graph.txt>
  ftclust solve    --graph <graph.txt> --k <k>
                   [--algorithm <pipeline|greedy|jrs|local|exact>]
                   [--t <t>] [--seed <s>] [--connect] [--out <set.txt>]
  ftclust udg      --positions <pos.txt> --radius <r> --k <k>
                   [--algorithm <udg|grid>] [--seed <s>]
                   [--svg <out.svg>] [--out <set.txt>]";

/// Parsed `--key value` options (plus bare flags mapped to "true").
struct Options(HashMap<String, String>);

impl Options {
    fn parse(args: &[String]) -> Result<Options, String> {
        let mut map = HashMap::new();
        let mut it = args.iter().peekable();
        while let Some(arg) = it.next() {
            let key = arg
                .strip_prefix("--")
                .ok_or_else(|| format!("expected an option, got `{arg}`"))?;
            let value = match it.peek() {
                Some(next) if !next.starts_with("--") => it.next().expect("peeked").clone(),
                _ => "true".to_string(), // bare flag
            };
            if map.insert(key.to_string(), value).is_some() {
                return Err(format!("duplicate option --{key}"));
            }
        }
        Ok(Options(map))
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.0.get(key).map(String::as_str)
    }

    fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key)
            .ok_or_else(|| format!("missing required option --{key}"))
    }

    fn parse_num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value for --{key}: `{v}`")),
        }
    }

    fn flag(&self, key: &str) -> bool {
        self.get(key) == Some("true")
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some((command, rest)) = args.split_first() else {
        return Err("no command given".into());
    };
    let opts = Options::parse(rest)?;
    match command.as_str() {
        "generate" => cmd_generate(&opts),
        "info" => cmd_info(&opts),
        "solve" => cmd_solve(&opts),
        "udg" => cmd_udg(&opts),
        other => Err(format!("unknown command `{other}`")),
    }
}

fn read_file(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
}

fn write_file(path: &str, contents: &str) -> Result<(), String> {
    std::fs::write(path, contents).map_err(|e| format!("cannot write {path}: {e}"))
}

fn load_graph(opts: &Options) -> Result<Graph, String> {
    let path = opts.require("graph")?;
    io::read_edge_list(&read_file(path)?).map_err(|e| format!("{path}: {e}"))
}

fn cmd_generate(opts: &Options) -> Result<(), String> {
    let family = opts.require("family")?;
    let n: u32 = opts.parse_num("nodes", 0)?;
    if n == 0 {
        return Err("missing or zero --nodes".into());
    }
    let seed: u64 = opts.parse_num("seed", 0)?;
    let avg: f64 = opts.parse_num("avg-degree", 10.0)?;
    let out = opts.require("out")?;
    let (graph, positions): (Graph, Option<Vec<ftclust::geometry::Point>>) = match family {
        "gnp" => (generators::gnp(n, (avg / n as f64).min(1.0), seed), None),
        "ba" => (
            generators::barabasi_albert(n, ((avg / 2.0) as u32).max(1), seed),
            None,
        ),
        "grid" => {
            let side = (n as f64).sqrt().round().max(2.0) as u32;
            (generators::grid_2d(side, side), None)
        }
        "tree" => (generators::random_tree(n, seed), None),
        "rgg" => {
            let udg = generators::random_udg(n, avg, 1.0, seed);
            (udg.graph().clone(), Some(udg.positions().to_vec()))
        }
        "clustered" => {
            let side = (n as f64 * std::f64::consts::PI / avg).sqrt();
            let udg = generators::clustered_udg(n, (n / 100).max(2), side, side / 20.0, 1.0, seed);
            (udg.graph().clone(), Some(udg.positions().to_vec()))
        }
        other => return Err(format!("unknown family `{other}`")),
    };
    write_file(out, &io::write_edge_list(&graph))?;
    println!("wrote {graph} to {out}");
    if let Some(pts) = positions {
        if let Some(pos_path) = opts.get("positions") {
            write_file(pos_path, &io::write_positions(&pts))?;
            println!("wrote {} positions to {pos_path}", pts.len());
        }
    } else if opts.get("positions").is_some() {
        return Err(format!("family `{family}` has no positions"));
    }
    Ok(())
}

fn cmd_info(opts: &Options) -> Result<(), String> {
    let g = load_graph(opts)?;
    let s = stats::degree_stats(&g);
    let comps = ftclust::graphs::traversal::connected_components(&g);
    println!("{g}");
    println!(
        "degrees: min {} / mean {:.2} / max {}",
        s.min, s.mean, s.max
    );
    println!("connected components: {}", comps.component_count());
    Ok(())
}

fn print_set_summary(g: &Graph, set: &DominatingSet, k: u32) {
    println!(
        "set size: {} of {} nodes ({:.1}%)",
        set.len(),
        g.node_count(),
        100.0 * set.len() as f64 / g.node_count().max(1) as f64
    );
    println!(
        "k = {k}: strict-valid = {}, cover-self-valid = {}",
        is_k_dominating(g, set, k, Semantics::Strict),
        is_k_dominating(g, set, k, Semantics::CoverSelf),
    );
}

fn save_set(opts: &Options, set: &DominatingSet) -> Result<(), String> {
    if let Some(path) = opts.get("out") {
        let ids: Vec<String> = set.ids().map(|v| v.raw().to_string()).collect();
        write_file(path, &(ids.join("\n") + "\n"))?;
        println!("wrote {} node ids to {path}", set.len());
    }
    Ok(())
}

fn cmd_solve(opts: &Options) -> Result<(), String> {
    let g = load_graph(opts)?;
    let k: u32 = opts.parse_num("k", 1)?;
    let t: u32 = opts.parse_num("t", 4)?;
    let seed: u64 = opts.parse_num("seed", 0)?;
    let inst = Instance::uniform_clamped(&g, k);
    let algorithm = opts.get("algorithm").unwrap_or("pipeline");
    let set = match algorithm {
        "pipeline" => {
            let run = GeneralPipeline::new(t)
                .seed(seed)
                .run(&inst)
                .map_err(|e| e.to_string())?;
            println!(
                "fractional value {:.2}, certified ratio ≤ {:.2}",
                run.fractional.value,
                run.certified_ratio().unwrap_or(f64::NAN)
            );
            run.set
        }
        "greedy" => greedy_kmds(&inst, Semantics::CoverSelf),
        "jrs" => {
            let out = jrs_kmds(&inst, Semantics::CoverSelf, seed);
            println!("jrs iterations: {}, rounds: {}", out.iterations, out.rounds);
            out.set
        }
        "local" => local_heuristic(&inst),
        "exact" => exact_kmds(&inst, Semantics::CoverSelf)
            .ok_or("instance too large for the exact solver (max 40 nodes)")?,
        other => return Err(format!("unknown algorithm `{other}`")),
    };
    print_set_summary(&g, &set, k);
    let set = if opts.flag("connect") {
        let (cds, added) = connect_dominating_set(&g, &set).map_err(|e| e.to_string())?;
        println!(
            "connected backbone: +{added} connectors → {} nodes",
            cds.len()
        );
        cds
    } else {
        set
    };
    save_set(opts, &set)
}

fn cmd_udg(opts: &Options) -> Result<(), String> {
    let pos_path = opts.require("positions")?;
    let pts = io::read_positions(&read_file(pos_path)?).map_err(|e| format!("{pos_path}: {e}"))?;
    let radius: f64 = opts.parse_num("radius", 1.0)?;
    let k: u32 = opts.parse_num("k", 1)?;
    let seed: u64 = opts.parse_num("seed", 0)?;
    let udg = UnitDiskGraph::build(pts, radius).map_err(|e| e.to_string())?;
    println!("{udg}");
    let algorithm = opts.get("algorithm").unwrap_or("udg");
    let set = match algorithm {
        "udg" => {
            let run = UdgAlgorithm::new(k)
                .seed(seed)
                .run(&udg)
                .map_err(|e| e.to_string())?;
            println!(
                "part I: {} leaders in {} rounds; part II: {} iterations",
                run.leaders.len(),
                run.part1_rounds,
                run.part2_iterations
            );
            run.set
        }
        "grid" => grid_clustering(&udg, k),
        other => return Err(format!("unknown algorithm `{other}`")),
    };
    print_set_summary(udg.graph(), &set, k);
    if let Some(svg_path) = opts.get("svg") {
        let options = SvgOptions {
            draw_edges: udg.graph().edge_count() <= 20_000,
            ..Default::default()
        };
        write_file(svg_path, &render_svg(&udg, &set, &options))?;
        println!("wrote visualization to {svg_path}");
    }
    save_set(opts, &set)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn options_parse_pairs_and_flags() {
        let o = Options::parse(&strs(&["--k", "3", "--connect", "--t", "2"])).unwrap();
        assert_eq!(o.get("k"), Some("3"));
        assert!(o.flag("connect"));
        assert_eq!(o.parse_num::<u32>("t", 0).unwrap(), 2);
        assert_eq!(o.parse_num::<u32>("absent", 9).unwrap(), 9);
        assert!(o.require("missing").is_err());
    }

    #[test]
    fn options_reject_junk() {
        assert!(Options::parse(&strs(&["positional"])).is_err());
        assert!(Options::parse(&strs(&["--a", "1", "--a", "2"])).is_err());
        let o = Options::parse(&strs(&["--n", "abc"])).unwrap();
        assert!(o.parse_num::<u32>("n", 0).is_err());
    }

    #[test]
    fn unknown_command_fails() {
        assert!(run(&strs(&["frobnicate"])).is_err());
        assert!(run(&[]).is_err());
    }

    #[test]
    fn generate_solve_udg_roundtrip() {
        let dir = std::env::temp_dir().join("ftclust_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let g_path = dir.join("g.txt");
        let p_path = dir.join("p.txt");
        let s_path = dir.join("s.txt");
        let svg_path = dir.join("v.svg");
        run(&strs(&[
            "generate",
            "--family",
            "rgg",
            "--nodes",
            "120",
            "--seed",
            "5",
            "--out",
            g_path.to_str().unwrap(),
            "--positions",
            p_path.to_str().unwrap(),
        ]))
        .unwrap();
        run(&strs(&["info", "--graph", g_path.to_str().unwrap()])).unwrap();
        run(&strs(&[
            "solve",
            "--graph",
            g_path.to_str().unwrap(),
            "--k",
            "2",
            "--algorithm",
            "greedy",
            "--connect",
            "--out",
            s_path.to_str().unwrap(),
        ]))
        .unwrap();
        let ids = std::fs::read_to_string(&s_path).unwrap();
        assert!(!ids.trim().is_empty());
        run(&strs(&[
            "udg",
            "--positions",
            p_path.to_str().unwrap(),
            "--radius",
            "1.0",
            "--k",
            "2",
            "--svg",
            svg_path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(std::fs::read_to_string(&svg_path)
            .unwrap()
            .starts_with("<svg"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
