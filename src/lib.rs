//! # ftclust — fault-tolerant clustering for ad hoc and sensor networks
//!
//! A reproduction of **Kuhn, Moscibroda & Wattenhofer, "Fault-Tolerant
//! Clustering in Ad Hoc and Sensor Networks" (ICDCS 2006)**: distributed
//! approximation algorithms for the minimum **k-fold dominating set**
//! problem (k-MDS), in general graphs and in unit disk graphs.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`core`] — the paper's algorithms (distributed LP approximation,
//!   randomized rounding, the `O(log log n)` UDG algorithm) plus baselines,
//!   validators, bounds and fault-tolerance analysis,
//! * [`graphs`] — graph representation and generators (including unit disk
//!   graphs),
//! * [`geometry`] — planar geometry (spatial grids, hexagonal coverings),
//! * [`netsim`] — the synchronous message-passing simulator with
//!   `O(log n)`-bit message accounting and fault injection,
//! * [`lp`] — covering-LP solvers used for lower bounds,
//! * [`render`] — SVG visualization of deployments and backbones.
//!
//! # Quickstart
//!
//! ```
//! use ftclust::core::prelude::*;
//! use ftclust::graphs::generators;
//!
//! // A random geometric network of 300 sensors.
//! let udg = generators::random_udg(300, 6.0, 1.0, 42);
//!
//! // A 2-fold dominating set via the O(log log n) UDG algorithm.
//! let result = UdgAlgorithm::new(2).seed(7).run(&udg).unwrap();
//! assert!(is_k_dominating(udg.graph(), &result.set, 2, Semantics::Strict));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ftclust_core as core;
pub use ftclust_geometry as geometry;
pub use ftclust_graphs as graphs;
pub use ftclust_lp as lp;
pub use ftclust_netsim as netsim;

pub mod render;
